// Package obs is the repository's observability substrate: a
// zero-dependency span tracer and (in metrics.go) a metrics registry,
// with exporters to the Chrome trace_event JSON format, a plain-text
// timeline, and a Prometheus-style text dump.
//
// The paper's whole argument is a latency decomposition — scheduling
// share (Figure 3), fork block time (Observation 2), GIL contention,
// cold starts, IPC/RPC boundary costs — so every executor in this repo
// can narrate a request as a span tree instead of a single end-to-end
// number. Producers hand events to a Recorder; a nil Recorder means
// tracing is off and instrumented hot paths pay exactly one nil-check.
//
// Clock domains: the virtual-time engine stamps spans from the sim
// clock, so a trace is a pure function of (workflow, plan, env) and is
// byte-identical at any worker count; the live executor stamps spans
// from the wall clock (nominal time), so its traces are envelopes, not
// equalities. Both express timestamps as request-relative
// time.Duration and export onto the trace_event microsecond timeline.
//
// Track model: PID 0 is the request/orchestrator track; sandbox s maps
// to pseudo-process s+1 with TID 0 as the wrap orchestrator row and
// TID 1+i as function rows — in Perfetto/chrome://tracing a sandbox
// reads as a process whose threads are its functions.
package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span/instant categories: the event taxonomy shared by both executors.
const (
	CatRequest  = "request"
	CatStage    = "stage"
	CatWrap     = "wrap"
	CatFunction = "function"
	CatSlice    = "slice" // per-thread run/block/wait/startup detail
	CatFork     = "fork"
	CatGIL      = "gil"
	CatCold     = "coldstart"
	CatIPC      = "ipc"
	CatRPC      = "rpc"
	CatBoundary = "boundary"
	CatCache    = "cache"
	CatPlan     = "plan"
	CatLoad     = "load"
	CatHedge    = "hedge"
)

// GIL instant names. A CPU span emits exactly one Acquire when the
// token is first taken, a Switch at every intermediate quantum yield,
// and one Release when the span's work is done — Figure 2's
// timeout-triggered drop becomes countable events.
const (
	GILAcquire = "gil.acquire"
	GILRelease = "gil.release"
	GILSwitch  = "gil.switch"
)

// Arg is one key/value annotation. Args are ordered slices, not maps,
// so exports are deterministic.
type Arg struct {
	Key, Val string
}

// A formats a value as an Arg. Ints and strings are formatted without
// fmt: A sits on the always-on trace path, and strconv interns small
// int strings so the common case ("stage", 3) does not allocate.
func A(key string, val interface{}) Arg {
	switch v := val.(type) {
	case string:
		return Arg{Key: key, Val: v}
	case int:
		return Arg{Key: key, Val: strconv.Itoa(v)}
	case int64:
		return Arg{Key: key, Val: strconv.FormatInt(v, 10)}
	}
	return Arg{Key: key, Val: fmt.Sprint(val)}
}

// Span is a complete interval on one track.
type Span struct {
	// PID and TID place the span on a Perfetto process/thread row.
	PID, TID int
	Name     string
	Cat      string
	// Start and End are request-relative (virtual or nominal wall) time.
	Start, End time.Duration
	Args       []Arg
}

// Instant is a point event on one track (fork issued, GIL handoff,
// cold start, cache hit).
type Instant struct {
	PID, TID int
	Name     string
	Cat      string
	At       time.Duration
	Args     []Arg
}

// Sample is one point of a named counter series (queue depth, pool
// occupancy); exported as a Chrome "C" event.
type Sample struct {
	PID   int
	Name  string
	At    time.Duration
	Value float64
}

// Recorder receives trace events. Implementations must be safe for
// concurrent use (the live executor and parallel planners record from
// many goroutines). A nil Recorder disables tracing; instrumented code
// guards each emission with a single nil-check.
type Recorder interface {
	RecordSpan(Span)
	RecordInstant(Instant)
	RecordSample(Sample)
}

// Namer is implemented by recorders that retain track names (process
// and thread rows). Producers that label tracks — the live executor
// naming sandboxes, the engine naming request rows — type-assert
// against this interface instead of a concrete recorder, so the flight
// recorder and *Trace both receive names.
type Namer interface {
	NameProcess(pid int, name string)
	NameThread(pid, tid int, name string)
}

// Verboser marks recorders that want full-detail traces (per-quantum
// GIL handoffs and similar high-frequency instants). The always-on
// flight recorder deliberately does NOT implement it: its per-request
// cost budget buys the coarse span tree only, while an explicit
// ?trace=1 *Trace opts into everything.
type Verboser interface {
	VerboseTrace() bool
}

// IsVerbose reports whether rec asked for full-detail tracing.
func IsVerbose(rec Recorder) bool {
	v, ok := rec.(Verboser)
	return ok && v.VerboseTrace()
}

// Tee fans every event out to both recorders (either may be nil). The
// serving plane uses it when a request carries an explicit ?trace=1
// recorder on top of the always-on flight recorder.
func Tee(a, b Recorder) Recorder {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &tee{a: a, b: b}
}

type tee struct{ a, b Recorder }

func (t *tee) RecordSpan(s Span)       { t.a.RecordSpan(s); t.b.RecordSpan(s) }
func (t *tee) RecordInstant(i Instant) { t.a.RecordInstant(i); t.b.RecordInstant(i) }
func (t *tee) RecordSample(s Sample)   { t.a.RecordSample(s); t.b.RecordSample(s) }

// VerboseTrace reports whether either side wants full detail.
func (t *tee) VerboseTrace() bool { return IsVerbose(t.a) || IsVerbose(t.b) }

// NameProcess forwards to whichever underlying recorders retain names.
func (t *tee) NameProcess(pid int, name string) {
	if n, ok := t.a.(Namer); ok {
		n.NameProcess(pid, name)
	}
	if n, ok := t.b.(Namer); ok {
		n.NameProcess(pid, name)
	}
}

// NameThread forwards to whichever underlying recorders retain names.
func (t *tee) NameThread(pid, tid int, name string) {
	if n, ok := t.a.(Namer); ok {
		n.NameThread(pid, tid, name)
	}
	if n, ok := t.b.(Namer); ok {
		n.NameThread(pid, tid, name)
	}
}

// Nop is a Recorder that discards everything. It exists for benchmarks
// that want the call overhead without retention; production hot paths
// prefer a nil Recorder (one nil-check, zero calls).
type Nop struct{}

// RecordSpan implements Recorder.
func (Nop) RecordSpan(Span) {}

// RecordInstant implements Recorder.
func (Nop) RecordInstant(Instant) {}

// RecordSample implements Recorder.
func (Nop) RecordSample(Sample) {}

// Trace is the standard Recorder: it retains events in memory for
// export. Safe for concurrent use; export order is canonicalized by
// sorting, so traces recorded by deterministic producers are
// byte-identical regardless of goroutine interleaving.
type Trace struct {
	mu       sync.Mutex
	spans    []Span
	instants []Instant
	samples  []Sample
	procs    map[int]string
	threads  map[[2]int]string
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{procs: map[int]string{}, threads: map[[2]int]string{}}
}

// VerboseTrace implements Verboser: an explicit *Trace (the ?trace=1
// path, test harnesses) always wants full detail.
func (t *Trace) VerboseTrace() bool { return true }

// RecordSpan implements Recorder.
func (t *Trace) RecordSpan(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// RecordInstant implements Recorder.
func (t *Trace) RecordInstant(i Instant) {
	t.mu.Lock()
	t.instants = append(t.instants, i)
	t.mu.Unlock()
}

// RecordSample implements Recorder.
func (t *Trace) RecordSample(s Sample) {
	t.mu.Lock()
	t.samples = append(t.samples, s)
	t.mu.Unlock()
}

// NameProcess labels a pseudo-process row ("request", "sandbox 3").
func (t *Trace) NameProcess(pid int, name string) {
	t.mu.Lock()
	t.procs[pid] = name
	t.mu.Unlock()
}

// NameThread labels a thread row within a pseudo-process.
func (t *Trace) NameThread(pid, tid int, name string) {
	t.mu.Lock()
	t.threads[[2]int{pid, tid}] = name
	t.mu.Unlock()
}

// Spans returns a canonically-ordered copy of the recorded spans:
// sorted by (Start, PID, TID, End, Name), stably, so concurrent
// recording order never leaks into exports.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.Name < b.Name
	})
	return out
}

// Instants returns a canonically-ordered copy of the recorded instants.
func (t *Trace) Instants() []Instant {
	t.mu.Lock()
	out := append([]Instant(nil), t.instants...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	return out
}

// Samples returns a canonically-ordered copy of the recorded counter
// samples.
func (t *Trace) Samples() []Sample {
	t.mu.Lock()
	out := append([]Sample(nil), t.samples...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.Name < b.Name
	})
	return out
}

// Len returns the total number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans) + len(t.instants) + len(t.samples)
}

// SpansBy returns the canonical spans whose category passes the filter
// (nil filter keeps everything).
func (t *Trace) SpansBy(cat string) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Cat == cat {
			out = append(out, s)
		}
	}
	return out
}

// InstantsBy returns the canonical instants with the given name.
func (t *Trace) InstantsBy(name string) []Instant {
	var out []Instant
	for _, i := range t.Instants() {
		if i.Name == name {
			out = append(out, i)
		}
	}
	return out
}

// NewWallClock returns a clock reading elapsed wall time since the
// call — the live executor's and planners' time base.
func NewWallClock() func() time.Duration {
	t0 := time.Now()
	return func() time.Duration { return time.Since(t0) }
}

// Fingerprint hashes any value's %+v rendering to a short stable hex
// string; run manifests use it to pin the constants calibration a
// table was derived under.
func Fingerprint(v interface{}) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", v)
	return fmt.Sprintf("%016x", h.Sum64())
}
