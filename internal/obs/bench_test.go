package obs

import (
	"math"
	"strings"
	"testing"
)

const benchSample = `goos: linux
goarch: amd64
pkg: chiron
cpu: Test CPU
BenchmarkFig06-8                     20          14865772 ns/op         1234 B/op         56 allocs/op
BenchmarkFig11PGPTrace-8             20            965888 ns/op       366810 B/op       1448 allocs/op
BenchmarkPGPPlanFINRA100-8           50            883989 ns/op          1131 plans_per_sec
some unrelated log line
BenchmarkTable02-8                   20           5000000 ns/op
PASS
ok      chiron  12.3s
`

func TestParseGoBench(t *testing.T) {
	rs, err := ParseGoBench(strings.NewReader(benchSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("parsed %d results, want 4", len(rs))
	}
	if rs[0].Name != "BenchmarkFig06" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", rs[0].Name)
	}
	if rs[0].NsPerOp != 14865772 || rs[0].BytesPerOp != 1234 || rs[0].AllocsPerOp != 56 {
		t.Fatalf("Fig06 parsed wrong: %+v", rs[0])
	}
	if rs[0].Iterations != 20 {
		t.Fatalf("iterations = %d", rs[0].Iterations)
	}
	if got := rs[2].Metrics["plans_per_sec"]; got != 1131 {
		t.Fatalf("custom metric = %v", got)
	}
	if rs[3].AllocsPerOp != 0 {
		t.Fatalf("missing -benchmem columns must stay zero: %+v", rs[3])
	}
}

func TestParseGoBenchFoldsRepetitionsToFastest(t *testing.T) {
	// go test -count=3 emits each benchmark three times; the report must
	// keep one entry per name, the fastest (min ns/op filters noise).
	const sample = `BenchmarkX-8   20   1500 ns/op   32 B/op   2 allocs/op
BenchmarkY-8   20   9000 ns/op
BenchmarkX-8   20   1200 ns/op   32 B/op   2 allocs/op
BenchmarkX-8   20   1900 ns/op   32 B/op   2 allocs/op
BenchmarkY-8   20   9500 ns/op
`
	rs, err := ParseGoBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2 (folded): %+v", len(rs), rs)
	}
	if rs[0].Name != "BenchmarkX" || rs[0].NsPerOp != 1200 {
		t.Fatalf("X not folded to fastest: %+v", rs[0])
	}
	if rs[1].Name != "BenchmarkY" || rs[1].NsPerOp != 9000 {
		t.Fatalf("Y not folded to fastest: %+v", rs[1])
	}
	if rs[0].AllocsPerOp != 2 {
		t.Fatalf("folded entry lost its columns: %+v", rs[0])
	}
}

func TestParseGoBenchEmpty(t *testing.T) {
	if _, err := ParseGoBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("expected error on output with no benchmarks")
	}
}

func TestCompareBenchFlagsRegressions(t *testing.T) {
	base := &BenchReport{Label: "before", Benchmarks: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 5},
	}}
	cur := &BenchReport{Label: "after", Benchmarks: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 1099, AllocsPerOp: 0}, // +9.9%: within threshold
		{Name: "BenchmarkB", NsPerOp: 1200},                 // +20%: regression
		{Name: "BenchmarkNew", NsPerOp: 7},                  // no baseline: skipped
	}}
	cmp := CompareBench(base, cur, 0.10)
	if len(cmp.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2 (unmatched names skipped)", len(cmp.Deltas))
	}
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v, want only BenchmarkB", regs)
	}
	if d := cmp.Deltas[0]; d.Name != "BenchmarkA" || d.Regression {
		t.Fatalf("A flagged wrongly: %+v", d)
	}
	if r := cmp.Deltas[1].Ratio; r < 1.19 || r > 1.21 {
		t.Fatalf("ratio = %v, want ~1.2", r)
	}
}

func TestBenchReportFind(t *testing.T) {
	r := &BenchReport{Benchmarks: []BenchResult{{Name: "BenchmarkX", NsPerOp: 3}}}
	if _, ok := r.Find("BenchmarkX"); !ok {
		t.Fatal("Find missed an existing benchmark")
	}
	if _, ok := r.Find("BenchmarkY"); ok {
		t.Fatal("Find fabricated a benchmark")
	}
}

func TestCompareBenchCarriesHitRates(t *testing.T) {
	base := &BenchReport{Label: "before", Benchmarks: []BenchResult{
		{Name: "BenchmarkCacheServeMix/lru", NsPerOp: 900, Metrics: map[string]float64{"hit_rate": 0.85}},
		{Name: "BenchmarkPlain", NsPerOp: 100},
	}}
	cur := &BenchReport{Label: "after", Benchmarks: []BenchResult{
		{Name: "BenchmarkCacheServeMix/lru", NsPerOp: 950, Metrics: map[string]float64{"hit_rate": 0.88}},
		{Name: "BenchmarkPlain", NsPerOp: 100},
	}}
	cmp := CompareBench(base, cur, 0.10)
	var mix, plain *BenchDelta
	for i := range cmp.Deltas {
		switch cmp.Deltas[i].Name {
		case "BenchmarkCacheServeMix/lru":
			mix = &cmp.Deltas[i]
		case "BenchmarkPlain":
			plain = &cmp.Deltas[i]
		}
	}
	if mix == nil || mix.OldHitRate == nil || mix.NewHitRate == nil {
		t.Fatalf("hit rates not carried: %+v", mix)
	}
	if *mix.OldHitRate != 0.85 || *mix.NewHitRate != 0.88 {
		t.Fatalf("hit rates = %v -> %v, want 0.85 -> 0.88", *mix.OldHitRate, *mix.NewHitRate)
	}
	if plain == nil || plain.OldHitRate != nil || plain.NewHitRate != nil {
		t.Fatalf("hit rate invented for a benchmark that reported none: %+v", plain)
	}
}

// TestParseGoBenchDropsNonFinite: b.ReportMetric of a 0/0 produces
// "NaN hit_rate" lines, which strconv.ParseFloat happily parses; the
// report must drop them (encoding/json refuses non-finite floats, so a
// kept NaN would make the whole BENCH_*.json unwritable).
func TestParseGoBenchDropsNonFinite(t *testing.T) {
	const sample = `BenchmarkZeroOps-8   1   2000 ns/op   NaN hit_rate
BenchmarkInfRate-8    1   3000 ns/op   +Inf items_per_op
BenchmarkFine-8       1   4000 ns/op   0.95 hit_rate
`
	rs, err := ParseGoBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	if _, ok := rs[0].Metrics["hit_rate"]; ok {
		t.Fatalf("NaN hit_rate kept: %+v", rs[0])
	}
	if _, ok := rs[1].Metrics["items_per_op"]; ok {
		t.Fatalf("+Inf metric kept: %+v", rs[1])
	}
	if got := rs[2].Metrics["hit_rate"]; got != 0.95 {
		t.Fatalf("finite metric lost: %+v", rs[2])
	}
}

// TestCompareBenchSkipsNonFinitePairs: a zero or non-finite ns/op on
// either side (hand-edited or truncated report) must not produce a
// NaN/Inf ratio in the comparison.
func TestCompareBenchSkipsNonFinitePairs(t *testing.T) {
	nan := math.NaN()
	base := &BenchReport{Benchmarks: []BenchResult{
		{Name: "BenchmarkZeroBase", NsPerOp: 0},
		{Name: "BenchmarkNaNBase", NsPerOp: nan},
		{Name: "BenchmarkOK", NsPerOp: 1000, Metrics: map[string]float64{"hit_rate": nan}},
	}}
	cur := &BenchReport{Benchmarks: []BenchResult{
		{Name: "BenchmarkZeroBase", NsPerOp: 500},
		{Name: "BenchmarkNaNBase", NsPerOp: 500},
		{Name: "BenchmarkOK", NsPerOp: 1100, Metrics: map[string]float64{"hit_rate": 0.9}},
	}}
	cmp := CompareBench(base, cur, 0.10)
	if len(cmp.Deltas) != 1 || cmp.Deltas[0].Name != "BenchmarkOK" {
		t.Fatalf("deltas = %+v, want only BenchmarkOK", cmp.Deltas)
	}
	d := cmp.Deltas[0]
	if d.OldHitRate != nil {
		t.Fatalf("NaN baseline hit rate kept: %v", *d.OldHitRate)
	}
	if d.NewHitRate == nil || *d.NewHitRate != 0.9 {
		t.Fatalf("finite hit rate lost: %+v", d)
	}
	if !finite(d.Ratio) {
		t.Fatalf("non-finite ratio leaked: %v", d.Ratio)
	}
}
