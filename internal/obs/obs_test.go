package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestTraceCanonicalOrder(t *testing.T) {
	tr := NewTrace()
	// Record out of order; accessors must canonicalize.
	tr.RecordSpan(Span{PID: 1, TID: 0, Name: "b", Start: ms(10), End: ms(20)})
	tr.RecordSpan(Span{PID: 0, TID: 0, Name: "a", Start: ms(0), End: ms(30)})
	tr.RecordSpan(Span{PID: 1, TID: 1, Name: "c", Start: ms(10), End: ms(15)})
	tr.RecordInstant(Instant{PID: 1, Name: "y", At: ms(5)})
	tr.RecordInstant(Instant{PID: 0, Name: "x", At: ms(5)})
	tr.RecordSample(Sample{PID: 0, Name: "q", At: ms(2), Value: 3})

	spans := tr.Spans()
	if spans[0].Name != "a" || spans[1].Name != "b" || spans[2].Name != "c" {
		t.Fatalf("span order = %s %s %s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	ins := tr.Instants()
	if ins[0].Name != "x" || ins[1].Name != "y" {
		t.Fatalf("instant order = %s %s", ins[0].Name, ins[1].Name)
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
}

func TestTraceConcurrentRecordingIsByteDeterministic(t *testing.T) {
	build := func(perm []int) []byte {
		tr := NewTrace()
		tr.NameProcess(0, "request")
		var wg sync.WaitGroup
		for _, i := range perm {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tr.RecordSpan(Span{PID: i % 3, TID: i % 2, Name: "s", Start: ms(i), End: ms(i + 1)})
				tr.RecordInstant(Instant{PID: i % 3, Name: "i", At: ms(i)})
			}(i)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	perm := rand.New(rand.NewSource(1)).Perm(32)
	seq := make([]int, 32)
	for i := range seq {
		seq[i] = i
	}
	if !bytes.Equal(build(seq), build(perm)) {
		t.Fatal("recording order leaked into Chrome export bytes")
	}
}

func TestSpansByAndInstantsBy(t *testing.T) {
	tr := NewTrace()
	tr.RecordSpan(Span{Name: "w", Cat: CatWrap, Start: ms(1), End: ms(2)})
	tr.RecordSpan(Span{Name: "f", Cat: CatFunction, Start: ms(1), End: ms(2)})
	tr.RecordInstant(Instant{Name: GILAcquire, At: ms(1)})
	tr.RecordInstant(Instant{Name: GILRelease, At: ms(2)})
	if got := tr.SpansBy(CatWrap); len(got) != 1 || got[0].Name != "w" {
		t.Fatalf("SpansBy(wrap) = %+v", got)
	}
	if got := tr.InstantsBy(GILAcquire); len(got) != 1 {
		t.Fatalf("InstantsBy(acquire) = %+v", got)
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	tr := NewTrace()
	tr.NameProcess(0, "request")
	tr.NameProcess(1, "sandbox 0")
	tr.NameThread(1, 1, "fn")
	tr.RecordSpan(Span{PID: 0, Name: "req", Cat: CatRequest, Start: 0, End: ms(10),
		Args: []Arg{A("workflow", "w"), A("stages", 2)}})
	tr.RecordInstant(Instant{PID: 1, Name: "fork", Cat: CatFork, At: ms(3)})
	tr.RecordSample(Sample{PID: 0, Name: "queue", At: ms(1), Value: 2})

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		Unit        string                   `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	// 3 metadata + 1 span + 1 instant + 1 counter.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("%d events, want 6", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 3 || phases["X"] != 1 || phases["i"] != 1 || phases["C"] != 1 {
		t.Fatalf("phase counts = %v", phases)
	}
	// The span's ts/dur are microseconds; args keep recording order.
	if !strings.Contains(buf.String(), `"args":{"workflow":"w","stages":"2"}`) {
		t.Fatalf("args not in recording order:\n%s", buf.String())
	}
}

func TestTimelineRendersTracks(t *testing.T) {
	tr := NewTrace()
	tr.NameProcess(0, "request")
	tr.NameProcess(1, "sandbox 0")
	tr.RecordSpan(Span{PID: 0, Name: "req", Cat: CatRequest, Start: 0, End: ms(10)})
	tr.RecordSpan(Span{PID: 1, TID: 1, Name: "fn", Cat: CatFunction, Start: ms(2), End: ms(8)})
	out := tr.Timeline(80)
	if !strings.Contains(out, "request") || !strings.Contains(out, "sandbox 0.t1") {
		t.Fatalf("timeline missing track labels:\n%s", out)
	}
	if !strings.Contains(out, "=") || !strings.Contains(out, "#") {
		t.Fatalf("timeline missing category glyphs:\n%s", out)
	}
	if NewTrace().Timeline(80) != "" {
		t.Fatal("empty trace should render empty timeline")
	}
}

func TestNopAndNilRecorder(t *testing.T) {
	// Nop must accept everything without effect.
	var r Recorder = Nop{}
	r.RecordSpan(Span{})
	r.RecordInstant(Instant{})
	r.RecordSample(Sample{})
	// The nil-Recorder contract: a nil interface is the off switch.
	var off Recorder
	if off != nil {
		t.Fatal("zero Recorder must be nil")
	}
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	type c struct{ A, B int }
	fp1 := Fingerprint(c{1, 2})
	fp2 := Fingerprint(c{1, 2})
	fp3 := Fingerprint(c{1, 3})
	if fp1 != fp2 {
		t.Fatal("fingerprint not stable")
	}
	if fp1 == fp3 {
		t.Fatal("fingerprint insensitive to value change")
	}
	if len(fp1) != 16 {
		t.Fatalf("fingerprint %q not 16 hex chars", fp1)
	}
}

func TestNewWallClockMonotone(t *testing.T) {
	clock := NewWallClock()
	a := clock()
	b := clock()
	if a < 0 || b < a {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}
