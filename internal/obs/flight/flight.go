// Package flight is the serving plane's always-on flight recorder.
//
// Every admitted request — HTTP and UDP share one executeAdmitted core
// — records its span tree into a pooled Recorder; when the request
// finishes, Finish decides whether the trace is worth keeping and
// either copies it into a fixed-size ring or returns the recorder to
// the pool untouched. Retention is tail-sampling: keep what hindsight
// says was interesting —
//
//   - slow: latency above the workflow's rolling p-quantile
//   - error: the request failed
//   - slo: the request exceeded its admission SLO
//   - adapt: it finished within the coincidence window of an adapt
//     action (replan/suppress/rollback) or burn-rate trip
//   - burn: its workflow's SLO error budget is actively burning
//   - sampled: probabilistic baseline so healthy traffic stays
//     represented
//   - forced: an operator asked for the next N traces via
//     /debug/flight/force
//
// plus a multi-window SLO burn-rate monitor (burn.go) whose trips both
// alert (chiron_slo_burn_alerts_total) and mark nearby traces, so a
// paging signal always points at captured evidence.
//
// Cost discipline: the drop path (the overwhelmingly common case)
// performs zero heap allocations — recorders come from a sync.Pool,
// span storage is reused flat slices capped at MaxSpans, per-workflow
// state is looked up read-locked, and burn windows are fixed arrays.
// Allocation happens only when a trace is actually retained.
package flight

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chiron/internal/obs"
)

// Reason is a bitmask of why a trace was retained.
type Reason uint32

const (
	ReasonSlow Reason = 1 << iota
	ReasonError
	ReasonSLO
	ReasonAdapt
	ReasonBurn
	ReasonSampled
	ReasonForced
)

var reasonNames = []struct {
	r Reason
	s string
}{
	{ReasonSlow, "slow"},
	{ReasonError, "error"},
	{ReasonSLO, "slo"},
	{ReasonAdapt, "adapt"},
	{ReasonBurn, "burn"},
	{ReasonSampled, "sampled"},
	{ReasonForced, "forced"},
}

// Strings expands the bitmask into stable tag order.
func (r Reason) Strings() []string {
	var out []string
	for _, rn := range reasonNames {
		if r&rn.r != 0 {
			out = append(out, rn.s)
		}
	}
	return out
}

func (r Reason) String() string { return strings.Join(r.Strings(), ",") }

// Recorder is the pooled obs.Recorder handed to one request. It
// retains events in flat slices (no per-event allocation after the
// slices warm up) and refuses growth past the configured span cap so a
// runaway producer cannot balloon memory.
type Recorder struct {
	mu       sync.Mutex
	spans    []obs.Span
	instants []obs.Instant
	samples  []obs.Sample
	procs    map[int]string
	threads  map[[2]int]string
	dropped  uint64
	maxSpans int
}

// RecordSpan implements obs.Recorder.
func (r *Recorder) RecordSpan(s obs.Span) {
	r.mu.Lock()
	if len(r.spans) < r.maxSpans {
		r.spans = append(r.spans, s)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// RecordInstant implements obs.Recorder.
func (r *Recorder) RecordInstant(i obs.Instant) {
	r.mu.Lock()
	if len(r.instants) < r.maxSpans {
		r.instants = append(r.instants, i)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// RecordSample implements obs.Recorder.
func (r *Recorder) RecordSample(s obs.Sample) {
	r.mu.Lock()
	if len(r.samples) < r.maxSpans {
		r.samples = append(r.samples, s)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// NameProcess implements obs.Namer.
func (r *Recorder) NameProcess(pid int, name string) {
	r.mu.Lock()
	r.procs[pid] = name
	r.mu.Unlock()
}

// NameThread implements obs.Namer.
func (r *Recorder) NameThread(pid, tid int, name string) {
	r.mu.Lock()
	r.threads[[2]int{pid, tid}] = name
	r.mu.Unlock()
}

func (r *Recorder) reset() {
	r.spans = r.spans[:0]
	r.instants = r.instants[:0]
	r.samples = r.samples[:0]
	clear(r.procs)
	clear(r.threads)
	r.dropped = 0
}

// Options configures a Flight.
type Options struct {
	// RingSize is how many retained traces are kept (default 256).
	RingSize int
	// SampleRate is the probabilistic baseline keep fraction for
	// otherwise-uninteresting traces (default 0.01; 0 disables, >=1
	// keeps everything).
	SampleRate float64
	// SlowQuantile marks a trace slow when its latency reaches this
	// rolling per-workflow quantile (default 0.99).
	SlowQuantile float64
	// MinSamples gates the slow-quantile rule until the workflow has
	// seen this many requests (default 50) — early traffic would
	// otherwise all be "slow".
	MinSamples int
	// MaxSpans caps events of each kind per recorder (default 2048).
	MaxSpans int
	// SLOTarget is the availability target for the burn monitor
	// (default 0.99). A request is "bad" when it errors or violates its
	// admission SLO.
	SLOTarget float64
	// FastWindow / SlowWindow are the burn-rate windows (defaults 5m /
	// 1h).
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold trips the alert when both windows reach it
	// (default 14.4).
	BurnThreshold float64
	// Coincidence retains traces finishing within this long after an
	// adapt action or burn trip (default 2s).
	Coincidence time.Duration
	// RetainPerSec bounds retentions per workflow per second (default
	// 64; negative = unlimited). Under systemic overload every request
	// violates its SLO and an unthrottled sampler would pay a full
	// trace copy per request — the throttle keeps the always-on cost
	// bounded while the ring still fills with representative traces.
	// Errors and forced dumps are exempt.
	RetainPerSec int
	// Reg receives chiron_flight_* and chiron_slo_* metrics (obs.Default
	// when nil).
	Reg *obs.Registry
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.RingSize <= 0 {
		o.RingSize = 256
	}
	if o.SampleRate < 0 {
		o.SampleRate = 0
	} else if o.SampleRate == 0 {
		o.SampleRate = 0.01
	}
	if o.SlowQuantile <= 0 || o.SlowQuantile >= 1 {
		o.SlowQuantile = 0.99
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 50
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = 2048
	}
	if o.SLOTarget <= 0 || o.SLOTarget >= 1 {
		o.SLOTarget = 0.99
	}
	if o.FastWindow <= 0 {
		o.FastWindow = 5 * time.Minute
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = time.Hour
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 14.4
	}
	if o.Coincidence <= 0 {
		o.Coincidence = 2 * time.Second
	}
	if o.RetainPerSec == 0 {
		o.RetainPerSec = 64
	}
	if o.Reg == nil {
		o.Reg = obs.Default
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Info describes one finished request to Finish.
type Info struct {
	Workflow string
	Latency  time.Duration
	SLO      time.Duration // admission SLO in effect (0 = none)
	Err      error
}

// Retained is one kept trace.
type Retained struct {
	ID       uint64
	Workflow string
	Reasons  Reason
	Latency  time.Duration
	SLO      time.Duration
	Err      string
	At       time.Time
	Dropped  uint64 // events the span cap discarded

	spans    []obs.Span
	instants []obs.Instant
	samples  []obs.Sample
	procs    map[int]string
	threads  map[[2]int]string
}

// Summary is the /debug/flight listing row.
type Summary struct {
	ID       uint64   `json:"id"`
	Workflow string   `json:"workflow"`
	Reasons  []string `json:"reasons"`
	Latency  string   `json:"latency"`
	SLO      string   `json:"slo,omitempty"`
	Err      string   `json:"error,omitempty"`
	At       string   `json:"at"`
	Spans    int      `json:"spans"`
	Dropped  uint64   `json:"dropped_events,omitempty"`
}

// Annotation is one adapt/burn event on the flight timeline.
type Annotation struct {
	At       time.Time `json:"-"`
	AtStr    string    `json:"at"`
	Workflow string    `json:"workflow"`
	Kind     string    `json:"kind"`
	Detail   string    `json:"detail,omitempty"`
}

const maxAnnotations = 64

// wfState is the per-workflow tail-sampling and budget state.
type wfState struct {
	lat    *obs.Histogram // rolling latency for the slow-quantile rule (unregistered)
	good   *obs.Counter
	bad    *obs.Counter
	bFast  *obs.Gauge
	bSlow  *obs.Gauge
	alerts *obs.Counter
	burn   *burnState

	// lastEvent is the unix-nano time of the most recent adapt action
	// or burn trip for this workflow; traces finishing within
	// Coincidence of it are retained.
	lastEvent atomic.Int64

	// retEpoch/retCount implement the per-second retention throttle.
	// The epoch race on second boundaries is benign: it can only
	// over- or under-admit by a handful of traces.
	retEpoch atomic.Int64
	retCount atomic.Int64
}

// retainAllow charges one retention against the per-second budget.
func (w *wfState) retainAllow(now time.Time, budget int) bool {
	if budget < 0 {
		return true
	}
	epoch := now.Unix()
	if w.retEpoch.Load() != epoch {
		w.retEpoch.Store(epoch)
		w.retCount.Store(0)
	}
	return w.retCount.Add(1) <= int64(budget)
}

// Flight owns the recorder pool, the retention ring, the per-workflow
// SLO monitors and the annotation log.
type Flight struct {
	opt  Options
	pool sync.Pool

	seq    atomic.Uint64 // trace ids (1-based; 0 means "not retained")
	rng    atomic.Uint64 // splitmix64 state for sampling
	forced atomic.Int64  // ForceNext countdown

	mu        sync.Mutex
	ring      []*Retained // len == RingSize once full
	next      int
	anns      []Annotation
	annNext   int
	finished  *obs.Counter
	retained  *obs.Counter
	dropped   *obs.Counter
	throttled *obs.Counter
	ringGauge *obs.Gauge

	wfMu sync.RWMutex
	wfs  map[string]*wfState
}

// New builds a Flight with the given options.
func New(opt Options) *Flight {
	opt = opt.withDefaults()
	f := &Flight{
		opt:  opt,
		ring: make([]*Retained, 0, opt.RingSize),
		anns: make([]Annotation, 0, maxAnnotations),
		wfs:  map[string]*wfState{},
	}
	f.rng.Store(uint64(opt.Now().UnixNano())*2 + 1)
	f.pool.New = func() interface{} {
		return &Recorder{
			procs:    map[int]string{},
			threads:  map[[2]int]string{},
			maxSpans: opt.MaxSpans,
		}
	}
	reg := opt.Reg
	f.finished = reg.Counter("chiron_flight_finished_total", "requests observed by the flight recorder")
	f.retained = reg.Counter("chiron_flight_retained_total", "traces kept in the flight ring")
	f.dropped = reg.Counter("chiron_flight_dropped_events_total", "trace events discarded by the per-recorder span cap")
	f.throttled = reg.Counter("chiron_flight_throttled_total", "retentions skipped by the per-second budget")
	f.ringGauge = reg.Gauge("chiron_flight_ring_size", "retained traces currently in the ring")
	return f
}

// Acquire returns a pooled recorder ready for one request. Callers
// MUST pass it to Finish exactly once.
func (f *Flight) Acquire() *Recorder {
	r := f.pool.Get().(*Recorder)
	return r
}

// splitmix64 advances the sampling stream.
func (f *Flight) nextRand() uint64 {
	x := f.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// wf returns (creating on first use) the workflow's sampling state.
func (f *Flight) wf(name string) *wfState {
	f.wfMu.RLock()
	w, ok := f.wfs[name]
	f.wfMu.RUnlock()
	if ok {
		return w
	}
	f.wfMu.Lock()
	defer f.wfMu.Unlock()
	if w, ok = f.wfs[name]; ok {
		return w
	}
	reg := f.opt.Reg
	lbl := obs.Labels("workflow", name)
	w = &wfState{
		lat:    obs.NewHistogram(nil),
		good:   reg.Counter("chiron_slo_good_total"+lbl, "requests within SLO and error-free"),
		bad:    reg.Counter("chiron_slo_bad_total"+lbl, "requests errored or over SLO"),
		bFast:  reg.Gauge("chiron_slo_burn_fast_x1000"+lbl, "fast-window (5m) error-budget burn rate x1000"),
		bSlow:  reg.Gauge("chiron_slo_burn_slow_x1000"+lbl, "slow-window (1h) error-budget burn rate x1000"),
		alerts: reg.Counter("chiron_slo_burn_alerts_total"+lbl, "multi-window burn-rate alert trips"),
		burn:   newBurnState(f.opt.FastWindow, f.opt.SlowWindow, f.opt.SLOTarget),
	}
	f.wfs[name] = w
	return w
}

// Finish closes out one request: updates the workflow's latency
// distribution and SLO budget, decides retention, and either copies
// the trace into the ring (returning its id) or recycles the recorder.
// The recorder must not be used after Finish returns.
func (f *Flight) Finish(rec *Recorder, info Info) (id uint64, kept bool) {
	f.finished.Inc()
	now := f.opt.Now()
	w := f.wf(info.Workflow)

	sloViolated := info.SLO > 0 && info.Latency > info.SLO
	bad := info.Err != nil || sloViolated
	if bad {
		w.bad.Inc()
	} else {
		w.good.Inc()
	}
	fastBurn, slowBurn, tripNow, tripEdge := w.burn.observe(now, bad, f.opt.BurnThreshold)
	w.bFast.Set(int64(fastBurn * 1000))
	w.bSlow.Set(int64(slowBurn * 1000))
	if tripEdge {
		w.alerts.Inc()
		w.lastEvent.Store(now.UnixNano())
		f.note(now, info.Workflow, "burn",
			fmt.Sprintf("fast=%.1fx slow=%.1fx threshold=%.1fx", fastBurn, slowBurn, f.opt.BurnThreshold))
	}

	// Slow rule against the distribution BEFORE this observation, so a
	// uniform workload doesn't tag every request as its own p99.
	var reasons Reason
	if n := w.lat.Count(); int(n) >= f.opt.MinSamples {
		// Strict >: Quantile reports the bucket's upper bound, so a
		// uniform workload's every request equals its own "p99".
		if q := w.lat.Quantile(f.opt.SlowQuantile); q > 0 && info.Latency > q {
			reasons |= ReasonSlow
		}
	}
	w.lat.Observe(info.Latency)

	if info.Err != nil {
		reasons |= ReasonError
	}
	if sloViolated {
		reasons |= ReasonSLO
	}
	if tripNow {
		reasons |= ReasonBurn
	}
	if le := w.lastEvent.Load(); le != 0 && now.UnixNano()-le <= int64(f.opt.Coincidence) {
		reasons |= ReasonAdapt
	}
	if f.forced.Load() > 0 && f.forced.Add(-1) >= 0 {
		reasons |= ReasonForced
	} else if reasons == 0 && f.opt.SampleRate > 0 {
		if f.opt.SampleRate >= 1 || f.nextRand() < uint64(f.opt.SampleRate*math.MaxUint64) {
			reasons |= ReasonSampled
		}
	}

	// Throttle quality-of-life retentions (slow/slo/burn/adapt/sampled):
	// during systemic overload every request qualifies, and copying each
	// one would put an O(spans) tax on the whole serving plane. Errors
	// and operator-forced dumps bypass the budget.
	if reasons != 0 && reasons&(ReasonError|ReasonForced) == 0 &&
		!w.retainAllow(now, f.opt.RetainPerSec) {
		f.throttled.Inc()
		reasons = 0
	}

	if rec.dropped > 0 {
		f.dropped.Add(rec.dropped)
	}
	if reasons == 0 {
		rec.reset()
		f.pool.Put(rec)
		return 0, false
	}

	id = f.seq.Add(1)
	kept = true
	ret := &Retained{
		ID:       id,
		Workflow: info.Workflow,
		Reasons:  reasons,
		Latency:  info.Latency,
		SLO:      info.SLO,
		At:       now,
		Dropped:  rec.dropped,
		spans:    append([]obs.Span(nil), rec.spans...),
		instants: append([]obs.Instant(nil), rec.instants...),
		samples:  append([]obs.Sample(nil), rec.samples...),
		procs:    make(map[int]string, len(rec.procs)),
		threads:  make(map[[2]int]string, len(rec.threads)),
	}
	if info.Err != nil {
		ret.Err = info.Err.Error()
	}
	for k, v := range rec.procs {
		ret.procs[k] = v
	}
	for k, v := range rec.threads {
		ret.threads[k] = v
	}
	rec.reset()
	f.pool.Put(rec)

	f.retained.Inc()
	f.mu.Lock()
	if len(f.ring) < f.opt.RingSize {
		f.ring = append(f.ring, ret)
	} else {
		f.ring[f.next] = ret
	}
	f.next = (f.next + 1) % f.opt.RingSize
	f.ringGauge.Set(int64(len(f.ring)))
	f.mu.Unlock()
	return id, true
}

// NoteEvent records an adapt-plane event ("replanned", "rollback",
// "suppressed", "calibrated") on the flight timeline. When
// retainNearby is true, traces finishing within the coincidence window
// are retained with reason "adapt" — used for the rare, significant
// actions; routine calibration only annotates.
func (f *Flight) NoteEvent(workflow, kind, detail string, retainNearby bool) {
	now := f.opt.Now()
	if retainNearby {
		f.wf(workflow).lastEvent.Store(now.UnixNano())
	}
	f.note(now, workflow, kind, detail)
}

func (f *Flight) note(now time.Time, workflow, kind, detail string) {
	a := Annotation{
		At:       now,
		AtStr:    now.UTC().Format(time.RFC3339Nano),
		Workflow: workflow,
		Kind:     kind,
		Detail:   detail,
	}
	f.mu.Lock()
	if len(f.anns) < maxAnnotations {
		f.anns = append(f.anns, a)
	} else {
		f.anns[f.annNext] = a
	}
	f.annNext = (f.annNext + 1) % maxAnnotations
	f.mu.Unlock()
}

// ForceNext retains the next n finished traces unconditionally
// (dump-on-demand).
func (f *Flight) ForceNext(n int) {
	if n > 0 {
		f.forced.Add(int64(n))
	}
}

// List returns summaries of the retained traces, newest first.
func (f *Flight) List() []Summary {
	f.mu.Lock()
	rets := append([]*Retained(nil), f.ring...)
	f.mu.Unlock()
	sort.Slice(rets, func(i, j int) bool { return rets[i].ID > rets[j].ID })
	out := make([]Summary, 0, len(rets))
	for _, r := range rets {
		s := Summary{
			ID:       r.ID,
			Workflow: r.Workflow,
			Reasons:  r.Reasons.Strings(),
			Latency:  r.Latency.String(),
			Err:      r.Err,
			At:       r.At.UTC().Format(time.RFC3339Nano),
			Spans:    len(r.spans),
			Dropped:  r.Dropped,
		}
		if r.SLO > 0 {
			s.SLO = r.SLO.String()
		}
		out = append(out, s)
	}
	return out
}

// Annotations returns the adapt/burn event log, newest first.
func (f *Flight) Annotations() []Annotation {
	f.mu.Lock()
	out := append([]Annotation(nil), f.anns...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At.After(out[j].At) })
	return out
}

// Len returns how many traces the ring currently holds.
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// get looks a retained trace up by id.
func (f *Flight) get(id uint64) *Retained {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.ring {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// WriteChrome exports one retained trace as Chrome trace_event JSON
// (Perfetto-loadable), or reports that the id is unknown/evicted.
func (f *Flight) WriteChrome(id uint64, w io.Writer) error {
	r := f.get(id)
	if r == nil {
		return fmt.Errorf("flight: trace %d not retained (evicted or never kept)", id)
	}
	// Copy into a Trace for the existing exporter; retained data is
	// immutable so no lock is needed past get.
	tr := obs.NewTrace()
	for pid, name := range r.procs {
		tr.NameProcess(pid, name)
	}
	for k, name := range r.threads {
		tr.NameThread(k[0], k[1], name)
	}
	for _, s := range r.spans {
		tr.RecordSpan(s)
	}
	for _, i := range r.instants {
		tr.RecordInstant(i)
	}
	for _, s := range r.samples {
		tr.RecordSample(s)
	}
	return tr.WriteChrome(w)
}
