package flight

// Multi-window SLO error-budget accounting, Google-SRE style. Each
// workflow tracks good/bad request counts over a fast window (default
// 5m) and a slow window (default 1h). The burn rate of a window is
//
//	burn = badFraction / (1 - SLOTarget)
//
// i.e. the multiple of the error budget being consumed: at target 0.99
// a steady 1% bad rate burns exactly 1x budget, all-bad burns 100x. An
// alert trips only when BOTH windows exceed the threshold — the fast
// window makes the alert responsive, the slow window keeps a brief
// blip from paging. 14.4x is the canonical fast-burn threshold (2% of
// a 30-day budget in one hour).
//
// Windows are rings of coarse buckets (window/burnBuckets resolution)
// with per-bucket epochs, so advancing time invalidates stale buckets
// lazily — no ticker goroutine, no allocation on the hot path.

import (
	"sync"
	"time"
)

const burnBuckets = 30

// window is one sliding count pair at fixed resolution.
type window struct {
	res   time.Duration
	epoch [burnBuckets]int64
	good  [burnBuckets]uint64
	bad   [burnBuckets]uint64
}

func newWindow(span time.Duration) window {
	res := span / burnBuckets
	if res <= 0 {
		res = time.Second
	}
	return window{res: res}
}

func (w *window) add(now time.Time, bad bool) {
	e := now.UnixNano() / int64(w.res)
	i := int(e % burnBuckets)
	if i < 0 {
		i += burnBuckets
	}
	if w.epoch[i] != e {
		w.epoch[i] = e
		w.good[i] = 0
		w.bad[i] = 0
	}
	if bad {
		w.bad[i]++
	} else {
		w.good[i]++
	}
}

// counts sums the live buckets (epoch within the window as of now).
func (w *window) counts(now time.Time) (good, bad uint64) {
	e := now.UnixNano() / int64(w.res)
	for i := 0; i < burnBuckets; i++ {
		if age := e - w.epoch[i]; age >= 0 && age < burnBuckets {
			good += w.good[i]
			bad += w.bad[i]
		}
	}
	return good, bad
}

// burnState is the per-workflow budget monitor.
type burnState struct {
	mu      sync.Mutex
	fast    window
	slow    window
	target  float64 // SLO target, e.g. 0.99
	tripped bool
}

func newBurnState(fast, slow time.Duration, target float64) *burnState {
	if target <= 0 || target >= 1 {
		target = 0.99
	}
	return &burnState{fast: newWindow(fast), slow: newWindow(slow), target: target}
}

func burnRate(good, bad uint64, target float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	badFrac := float64(bad) / float64(total)
	return badFrac / (1 - target)
}

// observe records one request and returns the two burn rates plus
// whether this observation transitioned the monitor into (or out of)
// the tripped state. tripNow reports the current tripped state.
func (b *burnState) observe(now time.Time, bad bool, threshold float64) (fastBurn, slowBurn float64, tripNow, tripEdge bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fast.add(now, bad)
	b.slow.add(now, bad)
	fg, fb := b.fast.counts(now)
	sg, sb := b.slow.counts(now)
	fastBurn = burnRate(fg, fb, b.target)
	slowBurn = burnRate(sg, sb, b.target)
	trip := fastBurn >= threshold && slowBurn >= threshold
	tripEdge = trip && !b.tripped
	b.tripped = trip
	return fastBurn, slowBurn, trip, tripEdge
}
