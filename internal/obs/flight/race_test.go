//go:build race

package flight

// Under the race detector sync.Pool randomly drops items on Put, so the
// pooled recorder is reallocated on a fraction of iterations and the
// zero-alloc assertion cannot hold. The plain `go test ./...` tier still
// enforces it.
const raceEnabled = true
