package flight

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"chiron/internal/obs"
)

// fakeClock is a settable Now for deterministic burn windows.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestFlight(opt Options) (*Flight, *fakeClock) {
	clk := newFakeClock()
	if opt.Now == nil {
		opt.Now = clk.Now
	}
	if opt.Reg == nil {
		opt.Reg = obs.NewRegistry()
	}
	if opt.SampleRate == 0 {
		opt.SampleRate = -1 // default off in tests: retention must be explainable
	}
	return New(opt), clk
}

func finishOne(f *Flight, wf string, lat time.Duration, slo time.Duration, err error) (uint64, bool) {
	rec := f.Acquire()
	rec.RecordSpan(obs.Span{Name: "request", Cat: obs.CatRequest, End: lat})
	return f.Finish(rec, Info{Workflow: wf, Latency: lat, SLO: slo, Err: err})
}

func TestRetainError(t *testing.T) {
	f, _ := newTestFlight(Options{})
	id, kept := finishOne(f, "wf", time.Millisecond, 0, errors.New("boom"))
	if !kept || id == 0 {
		t.Fatalf("error trace not retained (id=%d kept=%v)", id, kept)
	}
	l := f.List()
	if len(l) != 1 || l[0].Err != "boom" {
		t.Fatalf("listing = %+v", l)
	}
	if !contains(l[0].Reasons, "error") {
		t.Errorf("reasons = %v, want error", l[0].Reasons)
	}
}

func TestRetainSLOViolation(t *testing.T) {
	f, _ := newTestFlight(Options{})
	if _, kept := finishOne(f, "wf", 5*time.Millisecond, 10*time.Millisecond, nil); kept {
		t.Fatal("within-SLO trace retained")
	}
	id, kept := finishOne(f, "wf", 20*time.Millisecond, 10*time.Millisecond, nil)
	if !kept {
		t.Fatal("SLO-violating trace dropped")
	}
	l := f.List()
	if l[0].ID != id || !contains(l[0].Reasons, "slo") {
		t.Errorf("listing = %+v", l)
	}
}

func TestRetainSlowQuantile(t *testing.T) {
	f, _ := newTestFlight(Options{MinSamples: 10})
	// Build a uniform 1ms distribution, then send one 10x outlier.
	for i := 0; i < 50; i++ {
		if _, kept := finishOne(f, "wf", time.Millisecond, 0, nil); kept {
			t.Fatalf("uniform request %d retained", i)
		}
	}
	_, kept := finishOne(f, "wf", 10*time.Millisecond, 0, nil)
	if !kept {
		t.Fatal("10x-slower-than-p99 trace dropped")
	}
	if l := f.List(); !contains(l[0].Reasons, "slow") {
		t.Errorf("reasons = %v, want slow", l[0].Reasons)
	}
}

func TestSampledRetention(t *testing.T) {
	f, _ := newTestFlight(Options{SampleRate: 1})
	_, kept := finishOne(f, "wf", time.Millisecond, 0, nil)
	if !kept {
		t.Fatal("SampleRate=1 must keep everything")
	}
	if l := f.List(); !contains(l[0].Reasons, "sampled") {
		t.Errorf("reasons = %v, want sampled", l[0].Reasons)
	}
}

func TestForceNext(t *testing.T) {
	f, _ := newTestFlight(Options{})
	f.ForceNext(2)
	for i := 0; i < 2; i++ {
		if _, kept := finishOne(f, "wf", time.Millisecond, 0, nil); !kept {
			t.Fatalf("forced trace %d dropped", i)
		}
	}
	if _, kept := finishOne(f, "wf", time.Millisecond, 0, nil); kept {
		t.Fatal("trace after force budget retained")
	}
	if l := f.List(); !contains(l[0].Reasons, "forced") {
		t.Errorf("reasons = %v, want forced", l[0].Reasons)
	}
}

func TestRingBound(t *testing.T) {
	f, _ := newTestFlight(Options{RingSize: 8})
	var lastID uint64
	for i := 0; i < 100; i++ {
		id, kept := finishOne(f, "wf", time.Millisecond, 0, errors.New("x"))
		if !kept {
			t.Fatalf("error trace %d dropped", i)
		}
		lastID = id
	}
	if n := f.Len(); n != 8 {
		t.Fatalf("ring holds %d, want 8", n)
	}
	l := f.List()
	if l[0].ID != lastID {
		t.Errorf("newest retained = %d, want %d", l[0].ID, lastID)
	}
	// Oldest retained must be lastID-7; anything older was evicted.
	if l[len(l)-1].ID != lastID-7 {
		t.Errorf("oldest retained = %d, want %d", l[len(l)-1].ID, lastID-7)
	}
	if err := f.WriteChrome(1, new(bytes.Buffer)); err == nil {
		t.Error("evicted trace still fetchable")
	}
}

func TestBurnMonitorTripsAndRetains(t *testing.T) {
	reg := obs.NewRegistry()
	f, clk := newTestFlight(Options{Reg: reg, SLOTarget: 0.99, BurnThreshold: 14.4})
	// All-bad traffic: burn = 100x in both windows once counts exist.
	var sawBurn bool
	for i := 0; i < 20; i++ {
		clk.Advance(time.Second)
		_, kept := finishOne(f, "wf", 20*time.Millisecond, 10*time.Millisecond, nil)
		if !kept {
			t.Fatalf("bad request %d dropped", i)
		}
	}
	for _, s := range f.List() {
		if contains(s.Reasons, "burn") {
			sawBurn = true
		}
	}
	if !sawBurn {
		t.Error("no retained trace carries the burn reason")
	}
	lbl := obs.Labels("workflow", "wf")
	if v := reg.Counter("chiron_slo_burn_alerts_total"+lbl, "").Value(); v != 1 {
		t.Errorf("alerts = %d, want exactly 1 trip edge", v)
	}
	if v := reg.Gauge("chiron_slo_burn_fast_x1000"+lbl, "").Value(); v < 14_400 {
		t.Errorf("fast burn gauge = %d, want >= 14400", v)
	}
	if v := reg.Counter("chiron_slo_bad_total"+lbl, "").Value(); v != 20 {
		t.Errorf("bad counter = %d", v)
	}
	// The trip also annotated the timeline.
	anns := f.Annotations()
	if len(anns) == 0 || anns[len(anns)-1].Kind != "burn" {
		t.Errorf("annotations = %+v, want a burn entry", anns)
	}
}

func TestNoteEventCoincidenceRetention(t *testing.T) {
	f, clk := newTestFlight(Options{Coincidence: 2 * time.Second})
	if _, kept := finishOne(f, "wf", time.Millisecond, 0, nil); kept {
		t.Fatal("baseline trace retained")
	}
	f.NoteEvent("wf", "replanned", "drift=3.1", true)
	_, kept := finishOne(f, "wf", time.Millisecond, 0, nil)
	if !kept {
		t.Fatal("trace coinciding with a replan dropped")
	}
	if l := f.List(); !contains(l[0].Reasons, "adapt") {
		t.Errorf("reasons = %v, want adapt", l[0].Reasons)
	}
	// Outside the window: dropped again.
	clk.Advance(3 * time.Second)
	if _, kept := finishOne(f, "wf", time.Millisecond, 0, nil); kept {
		t.Fatal("trace after the coincidence window retained")
	}
	// Calibrate-style annotation (retainNearby=false) must not retain.
	f.NoteEvent("wf", "calibrated", "", false)
	if _, kept := finishOne(f, "wf", time.Millisecond, 0, nil); kept {
		t.Fatal("trace near a calibrate annotation retained")
	}
	if len(f.Annotations()) != 2 {
		t.Errorf("annotations = %+v", f.Annotations())
	}
}

func TestWriteChromeRoundTrip(t *testing.T) {
	f, _ := newTestFlight(Options{})
	rec := f.Acquire()
	rec.NameProcess(0, "request")
	rec.NameThread(1, 1, "f1")
	rec.RecordSpan(obs.Span{PID: 0, TID: 0, Name: "request wf-test", Cat: obs.CatRequest, End: time.Millisecond})
	rec.RecordInstant(obs.Instant{PID: 1, TID: 0, Name: "coldstart", Cat: obs.CatCold})
	rec.RecordSample(obs.Sample{PID: 0, Name: "queue", Value: 2})
	id, kept := f.Finish(rec, Info{Workflow: "wf", Latency: time.Millisecond, Err: errors.New("keep me")})
	if !kept {
		t.Fatal("trace dropped")
	}
	var buf bytes.Buffer
	if err := f.WriteChrome(id, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"traceEvents", "request wf-test", "coldstart", "process_name"} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %q", want)
		}
	}
}

// TestRecorderSpanCap: a runaway producer cannot grow a recorder past
// MaxSpans; the overflow is counted, and the retained copy stays capped.
func TestRecorderSpanCap(t *testing.T) {
	f, _ := newTestFlight(Options{MaxSpans: 64})
	rec := f.Acquire()
	for i := 0; i < 1000; i++ {
		rec.RecordSpan(obs.Span{Name: "s", End: time.Duration(i)})
	}
	id, kept := f.Finish(rec, Info{Workflow: "wf", Latency: time.Millisecond, Err: errors.New("keep")})
	if !kept {
		t.Fatal("dropped")
	}
	l := f.List()
	if l[0].ID != id || l[0].Spans != 64 {
		t.Fatalf("retained %d spans, want 64 (%+v)", l[0].Spans, l[0])
	}
	if l[0].Dropped != 1000-64 {
		t.Errorf("dropped = %d, want %d", l[0].Dropped, 1000-64)
	}
}

// TestFlightMemoryBounded drives 10k finishes and asserts nothing grows
// without bound: the ring stays at RingSize and recorders recycle
// through the pool.
func TestFlightMemoryBounded(t *testing.T) {
	f, _ := newTestFlight(Options{RingSize: 16, MaxSpans: 128})
	for i := 0; i < 10_000; i++ {
		rec := f.Acquire()
		for s := 0; s < 10; s++ {
			rec.RecordSpan(obs.Span{Name: "s", End: time.Duration(s)})
		}
		var err error
		if i%37 == 0 {
			err = errKeep
		}
		f.Finish(rec, Info{Workflow: "wf", Latency: time.Millisecond, Err: err})
	}
	if n := f.Len(); n > 16 {
		t.Fatalf("ring grew to %d, cap 16", n)
	}
}

var errKeep = errors.New("keep")

// TestRetainThrottle: under systemic overload (every request violates
// its SLO) the per-second budget bounds the copy cost; errors bypass it.
func TestRetainThrottle(t *testing.T) {
	reg := obs.NewRegistry()
	f, clk := newTestFlight(Options{Reg: reg, RetainPerSec: 3})
	var kept int
	for i := 0; i < 50; i++ {
		if _, k := finishOne(f, "wf", 20*time.Millisecond, 10*time.Millisecond, nil); k {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d SLO traces in one second, budget 3", kept)
	}
	if v := reg.Counter("chiron_flight_throttled_total", "").Value(); v != 47 {
		t.Errorf("throttled = %d, want 47", v)
	}
	// Errors are precious: retained even with the budget spent.
	if _, k := finishOne(f, "wf", time.Millisecond, 0, errKeep); !k {
		t.Fatal("error trace throttled")
	}
	// The budget refills next second.
	clk.Advance(time.Second)
	if _, k := finishOne(f, "wf", 20*time.Millisecond, 10*time.Millisecond, nil); !k {
		t.Fatal("budget did not refill")
	}
}

// TestFinishDropPathZeroAlloc guards the tentpole's cost claim: the
// common case (record a few spans, drop the trace) allocates nothing
// once the pool and per-workflow state are warm.
func TestFinishDropPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under -race; alloc count is not meaningful")
	}
	f, _ := newTestFlight(Options{}) // sampling off via newTestFlight
	// Warm the pool, the workflow state and the span slices.
	for i := 0; i < 100; i++ {
		finishOne(f, "wf", time.Millisecond, 0, nil)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		rec := f.Acquire()
		rec.RecordSpan(obs.Span{Name: "request", Cat: obs.CatRequest, End: time.Millisecond})
		rec.RecordInstant(obs.Instant{Name: "coldstart", Cat: obs.CatCold})
		f.Finish(rec, Info{Workflow: "wf", Latency: time.Millisecond, SLO: time.Second})
	})
	if allocs != 0 {
		t.Fatalf("flight drop path allocates %.1f/op, want 0", allocs)
	}
}

func TestConcurrentFinish(t *testing.T) {
	f, _ := newTestFlight(Options{RingSize: 32})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var err error
				if i%10 == 0 {
					err = errKeep
				}
				finishOne(f, fmt.Sprintf("wf-%d", w%3), time.Millisecond, 0, err)
			}
		}(w)
	}
	wg.Wait()
	if n := f.Len(); n != 32 {
		t.Fatalf("ring = %d, want full 32", n)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
