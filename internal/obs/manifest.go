package obs

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// Manifest records the provenance of one evaluation run: everything
// needed to re-derive a results table byte-for-byte. It is written as
// run-manifest.json next to every results/*.txt table, in the spirit
// of SeBS-Flow's reproducibility packaging — a figure without its
// manifest is an anecdote.
type Manifest struct {
	// Tool names the producing command ("chiron-bench").
	Tool string `json:"tool"`
	// GoVersion is runtime.Version() of the producing build.
	GoVersion string `json:"go_version"`
	// Version is the producing binary's main-module version from
	// debug.ReadBuildInfo ("(devel)" for local builds) — the same value
	// the chiron_build_info gauge exposes.
	Version string `json:"version,omitempty"`
	// VCSRevision is the commit the binary was built from, when the
	// build stamped one.
	VCSRevision string `json:"vcs_revision,omitempty"`
	// Seed is the jitter seed all experiments derived their streams from.
	Seed int64 `json:"seed"`
	// Workers is the parallel pool width (results are identical at any
	// width; recorded for wall-clock context).
	Workers int `json:"workers"`
	// Quick marks trimmed CI-sized sweeps.
	Quick bool `json:"quick"`
	// Requests is the per-configuration sample count.
	Requests int `json:"requests"`
	// ConstantsFP fingerprints the calibrated model.Constants
	// (Fingerprint), pinning the substrate calibration.
	ConstantsFP string `json:"constants_fp"`
	// Experiments lists the experiment IDs the run regenerated.
	Experiments []string `json:"experiments,omitempty"`
	// Workloads lists the workload suite the experiments drew from.
	Workloads []string `json:"workloads,omitempty"`
	// Flags records the explicitly-set command-line flags.
	Flags map[string]string `json:"flags,omitempty"`
	// CreatedAt is an RFC3339 wall timestamp; empty in deterministic
	// tests, populated by the CLI.
	CreatedAt string `json:"created_at,omitempty"`
}

// WriteJSON renders the manifest as indented JSON. Field order follows
// the struct; Flags is the only map and encoding/json sorts its keys,
// so output is deterministic for a fixed manifest.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ManifestName is the file name manifests are written under.
const ManifestName = "run-manifest.json"

// WriteFile writes the manifest into dir as ManifestName.
func (m *Manifest) WriteFile(dir string) error {
	f, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest loads a manifest previously written with WriteFile.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}
