package obs

// Build provenance: chirond exposes what binary is serving, and run
// manifests pin what binary produced a results directory. Everything
// comes from runtime/debug.ReadBuildInfo so there is no ldflags
// ceremony — module version, VCS revision and toolchain ride along in
// the binary already.

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo is the provenance triple stamped into chiron_build_info and
// run-manifest.json.
type BuildInfo struct {
	Version   string `json:"version"`                // main module version ("(devel)" for local builds)
	GoVersion string `json:"go_version"`             // toolchain that built the binary
	Revision  string `json:"vcs_revision,omitempty"` // VCS commit, when stamped
	Modified  bool   `json:"vcs_modified,omitempty"` // dirty working tree at build time
}

// ReadBuild returns the current binary's build info. Fields degrade to
// best-effort values when debug info is unavailable (e.g. test
// binaries): GoVersion always comes from runtime.Version.
func ReadBuild() BuildInfo {
	b := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	if info.GoVersion != "" {
		b.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// RegisterBuildInfo emits the conventional info-style gauge
//
//	chiron_build_info{version="(devel)",go_version="go1.22.x"} 1
//
// on reg (Default when nil) and returns the info it stamped.
func RegisterBuildInfo(reg *Registry) BuildInfo {
	if reg == nil {
		reg = Default
	}
	b := ReadBuild()
	kv := []string{"version", b.Version, "go_version", b.GoVersion}
	if b.Revision != "" {
		kv = append(kv, "revision", b.Revision)
	}
	reg.Gauge("chiron_build_info"+Labels(kv...),
		"build provenance; value is always 1").Set(1)
	return b
}
