package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// finite rejects the NaN/Inf values that poison downstream arithmetic
// and break JSON encoding (encoding/json refuses non-finite floats).
func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// BenchResult is one parsed `go test -bench` line: the benchmark's name
// (GOMAXPROCS suffix stripped) and its per-op measurements. ns/op is
// always present; B/op and allocs/op require -benchmem; extra metrics
// reported via b.ReportMetric (e.g. plans_per_sec) land in Metrics.
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is a labelled benchmark run plus its provenance manifest —
// the BENCH_*.json schema the repo's perf trajectory is tracked in.
type BenchReport struct {
	Label      string        `json:"label"`
	Manifest   *Manifest     `json:"manifest,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// Find returns the named benchmark result, if present.
func (r *BenchReport) Find(name string) (BenchResult, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return BenchResult{}, false
}

// BenchDelta compares one benchmark across two runs.
type BenchDelta struct {
	Name  string  `json:"name"`
	OldNs float64 `json:"old_ns_per_op"`
	NewNs float64 `json:"new_ns_per_op"`
	// Ratio is new/old ns/op: < 1 is a speedup, > 1 a slowdown.
	Ratio     float64 `json:"ratio"`
	OldAllocs float64 `json:"old_allocs_per_op"`
	NewAllocs float64 `json:"new_allocs_per_op"`
	// OldHitRate/NewHitRate track the hit_rate metric the cache
	// benchmarks report alongside ns/op (nil when a side didn't report
	// it). A cache PR is judged on both columns: lookup cost and how much
	// of the working set stayed resident.
	OldHitRate *float64 `json:"old_hit_rate,omitempty"`
	NewHitRate *float64 `json:"new_hit_rate,omitempty"`
	Regression bool     `json:"regression"`
}

// BenchComparison is a baseline/current pair with per-benchmark deltas,
// the committed before/after record for a perf PR.
type BenchComparison struct {
	Baseline *BenchReport `json:"baseline"`
	Current  *BenchReport `json:"current"`
	// Threshold is the fractional ns/op slowdown that counts as a
	// regression (0.10 = +10%).
	Threshold float64      `json:"threshold"`
	Deltas    []BenchDelta `json:"deltas"`
}

// Regressions returns the deltas flagged as regressions.
func (c *BenchComparison) Regressions() []BenchDelta {
	var out []BenchDelta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// stripProcs removes the -N GOMAXPROCS suffix go test appends to
// benchmark names (BenchmarkFig06-8 -> BenchmarkFig06), so reports
// compare across machines with different core counts.
func stripProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// ParseGoBench parses `go test -bench` output into results, tolerating
// interleaved non-benchmark lines (log output, PASS/ok trailers). Units
// beyond the standard ns/op, B/op and allocs/op are collected into
// Metrics keyed by unit name. Repeated names (from -count=N) fold to
// the fastest repetition — min ns/op is the estimator least disturbed
// by scheduler and frequency noise, which at small -benchtime budgets
// otherwise dwarfs real regressions.
func ParseGoBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name iterations value unit [value unit]...
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := BenchResult{Name: stripProcs(fields[0]), Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil || !finite(v) {
				// ParseFloat accepts "NaN" and "Inf"; a benchmark that
				// reported a 0/0 metric must not poison the report.
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
				ok = true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: no benchmark lines found")
	}
	byName := make(map[string]int, len(out))
	folded := out[:0]
	for _, b := range out {
		if i, ok := byName[b.Name]; ok {
			if b.NsPerOp < folded[i].NsPerOp {
				folded[i] = b
			}
			continue
		}
		byName[b.Name] = len(folded)
		folded = append(folded, b)
	}
	return folded, nil
}

// CompareBench builds the delta table between two reports. Benchmarks
// present in only one report are skipped (renames don't fail the gate);
// a benchmark regresses when its ns/op grows by more than threshold.
func CompareBench(baseline, current *BenchReport, threshold float64) *BenchComparison {
	cmp := &BenchComparison{Baseline: baseline, Current: current, Threshold: threshold}
	for _, nb := range current.Benchmarks {
		ob, ok := baseline.Find(nb.Name)
		// A zero or non-finite baseline (hand-edited or truncated report)
		// would make the ratio NaN/Inf, which encoding/json rejects —
		// skip the pair rather than emit an unencodable comparison.
		if !ok || ob.NsPerOp <= 0 || !finite(ob.NsPerOp) || !finite(nb.NsPerOp) {
			continue
		}
		d := BenchDelta{
			Name:  nb.Name,
			OldNs: ob.NsPerOp, NewNs: nb.NsPerOp,
			Ratio:     nb.NsPerOp / ob.NsPerOp,
			OldAllocs: ob.AllocsPerOp, NewAllocs: nb.AllocsPerOp,
		}
		if r, ok := ob.Metrics["hit_rate"]; ok && finite(r) {
			v := r
			d.OldHitRate = &v
		}
		if r, ok := nb.Metrics["hit_rate"]; ok && finite(r) {
			v := r
			d.NewHitRate = &v
		}
		d.Regression = nb.NsPerOp > ob.NsPerOp*(1+threshold)
		cmp.Deltas = append(cmp.Deltas, d)
	}
	sort.Slice(cmp.Deltas, func(i, j int) bool { return cmp.Deltas[i].Name < cmp.Deltas[j].Name })
	return cmp
}
