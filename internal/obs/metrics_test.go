package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]time.Duration{ms(1), ms(10), ms(100)})
	for _, d := range []time.Duration{ms(1) / 2, ms(5), ms(50), ms(500)} {
		h.Observe(d)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := ms(1)/2 + ms(5) + ms(50) + ms(500); h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	if h.Mean() != h.Sum()/4 {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Quantiles are bucket upper bounds: p50 of 4 samples is rank 2,
	// which lands in the (1ms, 10ms] bucket.
	if q := h.Quantile(0.5); q != ms(10) {
		t.Fatalf("q50 = %v", q)
	}
	if q := h.Quantile(1); q != ms(100) {
		t.Fatalf("q100 = %v (overflow bucket reports top bound)", q)
	}
	if (&Histogram{}).Count() != 0 {
		t.Fatal("zero histogram must count 0")
	}
	if NewHistogram(nil).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c2 := r.Counter("x_total", "")
	if c1 != c2 {
		t.Fatal("Counter not get-or-create")
	}
	if r.Gauge("g", "") != r.Gauge("g", "") {
		t.Fatal("Gauge not get-or-create")
	}
	if r.Histogram("h", "", nil) != r.Histogram("h", "", nil) {
		t.Fatal("Histogram not get-or-create")
	}
}

func TestRegistryResetKeepsPointers(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	c.Add(3)
	g.Set(9)
	h.Observe(ms(5))
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset left values behind")
	}
	c.Inc()
	if r.Counter("c_total", "").Value() != 1 {
		t.Fatal("pointer invalidated by Reset")
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "a counter").Add(2)
	r.Gauge("a_gauge", "a gauge").Set(-1)
	h := r.Histogram("c_hist", "a histogram", []time.Duration{ms(1), ms(10)})
	h.Observe(ms(5))
	h.Observe(ms(50))

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Sorted by name: a_gauge, b_total, c_hist.
	if !(strings.Index(out, "a_gauge") < strings.Index(out, "b_total") &&
		strings.Index(out, "b_total") < strings.Index(out, "c_hist")) {
		t.Fatalf("metrics not name-sorted:\n%s", out)
	}
	for _, want := range []string{
		"# HELP a_gauge a gauge",
		"# TYPE a_gauge gauge\na_gauge -1",
		"# TYPE b_total counter\nb_total 2",
		"# TYPE c_hist histogram",
		`c_hist_bucket{le="0.001"} 0`,
		`c_hist_bucket{le="0.01"} 1`, // cumulative
		`c_hist_bucket{le="+Inf"} 2`,
		"c_hist_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Deterministic bytes.
	var buf2 bytes.Buffer
	if err := r.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteProm not byte-stable")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c_total", "").Inc()
				r.Histogram("h", "", nil).Observe(time.Microsecond)
				var buf bytes.Buffer
				_ = r.WriteProm(&buf)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c_total", "").Value() != 800 {
		t.Fatalf("lost increments: %d", r.Counter("c_total", "").Value())
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		Tool: "chiron-bench", GoVersion: "go1.24.0", Seed: 7, Workers: 4,
		Quick: true, Requests: 25, ConstantsFP: "deadbeefdeadbeef",
		Experiments: []string{"fig13"}, Workloads: []string{"FINRA-100"},
		Flags: map[string]string{"quick": "true"},
	}
	if err := m.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 7 || got.ConstantsFP != m.ConstantsFP || got.Flags["quick"] != "true" ||
		len(got.Experiments) != 1 || got.Workloads[0] != "FINRA-100" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	// WriteJSON is deterministic for a fixed manifest.
	var a, b bytes.Buffer
	if err := m.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSON not deterministic")
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
}

func TestReadManifestMissing(t *testing.T) {
	if _, err := ReadManifest(t.TempDir()); err == nil {
		t.Fatal("missing manifest should error")
	}
}

func TestIntHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.IntHistogram("bytes", "datagram sizes", []int64{64, 256, 1024})
	for _, v := range []int64{40, 64, 65, 300, 2000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 40+64+65+300+2000 {
		t.Fatalf("sum %d", h.Sum())
	}
	if mean := h.Mean(); mean != float64(h.Sum())/5 {
		t.Fatalf("mean %v", mean)
	}
	// Get-or-create returns the same histogram; Reset zeroes it.
	if r.IntHistogram("bytes", "", nil) != h {
		t.Fatal("get-or-create returned a different histogram")
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE bytes histogram",
		"bytes_bucket{le=\"64\"} 2",   // 40, 64
		"bytes_bucket{le=\"256\"} 3",  // +65
		"bytes_bucket{le=\"1024\"} 4", // +300
		"bytes_bucket{le=\"+Inf\"} 5", // +2000
		"bytes_sum 2469",
		"bytes_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteProm missing %q in:\n%s", want, out)
		}
	}
	r.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not zero the int histogram")
	}
}

func TestIntHistogramDefaultBounds(t *testing.T) {
	h := NewIntHistogram(nil)
	h.Observe(100)
	if h.Count() != 1 {
		t.Fatal("default-bounds histogram dropped an observation")
	}
}
