package obs

// Bridge from the Go runtime/metrics package into the obs registry.
// Serving-plane tail spikes are often not the workload's fault — a GC
// pause, a goroutine pile-up, or scheduler queuing shows up as p99
// latency with nothing in the request trace to blame. Polling the
// runtime's own counters into /metrics puts those events on the same
// scrape timeline as chiron_serve_latency, so a burn-rate trip can be
// correlated with (or exonerated from) runtime behaviour.
//
// Gauges are point-in-time; pause and scheduler-latency quantiles are
// computed as deltas between consecutive cumulative histogram
// snapshots, so each poll reports the p99 of the *interval*, not of
// process lifetime.

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

const (
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// RuntimeBridge periodically samples runtime/metrics into registry
// gauges:
//
//	chiron_runtime_heap_bytes          live heap object bytes
//	chiron_runtime_goroutines          current goroutine count
//	chiron_runtime_gc_cycles_total     completed GC cycles
//	chiron_runtime_gc_pause_p99_us     p99 GC stop-the-world pause over the last interval
//	chiron_runtime_sched_latency_p99_us p99 goroutine scheduling latency over the last interval
type RuntimeBridge struct {
	heap       *Gauge
	goroutines *Gauge
	gcCycles   *Gauge
	gcPause    *Gauge
	schedLat   *Gauge

	samples []metrics.Sample
	prev    map[string]histSnapshot

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

type histSnapshot struct {
	buckets []float64
	counts  []uint64
}

// NewRuntimeBridge registers the runtime gauges on reg (Default when
// nil). Call Collect for a one-shot sample or Start for a polling loop.
func NewRuntimeBridge(reg *Registry) *RuntimeBridge {
	if reg == nil {
		reg = Default
	}
	b := &RuntimeBridge{
		heap:       reg.Gauge("chiron_runtime_heap_bytes", "live heap object bytes (runtime/metrics)"),
		goroutines: reg.Gauge("chiron_runtime_goroutines", "current goroutine count"),
		gcCycles:   reg.Gauge("chiron_runtime_gc_cycles_total", "completed GC cycles since process start"),
		gcPause:    reg.Gauge("chiron_runtime_gc_pause_p99_us", "p99 GC pause over the last poll interval, microseconds"),
		schedLat:   reg.Gauge("chiron_runtime_sched_latency_p99_us", "p99 goroutine scheduling latency over the last poll interval, microseconds"),
		prev:       map[string]histSnapshot{},
	}
	names := []string{rmHeapBytes, rmGoroutines, rmGCCycles, rmGCPauses, rmSchedLat}
	b.samples = make([]metrics.Sample, len(names))
	for i, n := range names {
		b.samples[i].Name = n
	}
	return b
}

// Collect takes one sample of every bridged metric. Safe to call
// concurrently with itself and with Start's loop.
func (b *RuntimeBridge) Collect() {
	b.mu.Lock()
	defer b.mu.Unlock()
	metrics.Read(b.samples)
	for i := range b.samples {
		s := &b.samples[i]
		switch s.Name {
		case rmHeapBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				b.heap.Set(int64(s.Value.Uint64()))
			}
		case rmGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				b.goroutines.Set(int64(s.Value.Uint64()))
			}
		case rmGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				b.gcCycles.Set(int64(s.Value.Uint64()))
			}
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				b.gcPause.Set(int64(b.deltaQuantileUS(s.Name, s.Value.Float64Histogram(), 0.99)))
			}
		case rmSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				b.schedLat.Set(int64(b.deltaQuantileUS(s.Name, s.Value.Float64Histogram(), 0.99)))
			}
		}
	}
}

// deltaQuantileUS computes the q-quantile (in microseconds) of the
// observations added since the previous snapshot of the same cumulative
// histogram. Returns 0 when the interval saw none.
func (b *RuntimeBridge) deltaQuantileUS(name string, h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	cur := histSnapshot{
		buckets: append([]float64(nil), h.Buckets...),
		counts:  append([]uint64(nil), h.Counts...),
	}
	prev, ok := b.prev[name]
	b.prev[name] = cur
	delta := make([]uint64, len(cur.counts))
	var total uint64
	for i := range cur.counts {
		d := cur.counts[i]
		if ok && i < len(prev.counts) && prev.counts[i] <= d {
			d -= prev.counts[i]
		} else if ok && i < len(prev.counts) {
			d = 0 // histogram layout changed; treat as empty interval
		}
		delta[i] = d
		total += d
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, d := range delta {
		cum += d
		if cum >= target {
			// Bucket i spans (Buckets[i], Buckets[i+1]]; report the
			// finite upper bound in microseconds.
			hi := cur.buckets[min(i+1, len(cur.buckets)-1)]
			if math.IsInf(hi, 1) {
				hi = cur.buckets[max(0, len(cur.buckets)-2)]
			}
			return hi * 1e6
		}
	}
	return 0
}

// Start launches a polling goroutine at the given interval (default
// 5s). Stop halts it and waits for exit.
func (b *RuntimeBridge) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	b.stop = make(chan struct{})
	b.done = make(chan struct{})
	b.Collect()
	go func() {
		defer close(b.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				b.Collect()
			case <-b.stop:
				return
			}
		}
	}()
}

// Stop halts the polling loop started by Start.
func (b *RuntimeBridge) Stop() {
	if b.stop == nil {
		return
	}
	close(b.stop)
	<-b.done
	b.stop = nil
}
