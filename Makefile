GO ?= go

.PHONY: all build test race bench ci fmt vet tables

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# tables regenerates every figure/table into results/.
tables:
	$(GO) run ./cmd/chiron-bench -out results
	$(GO) run ./cmd/chiron-bench -exp ablations -out results

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# ci is the full gate: formatting, static analysis, race-enabled tests.
ci: fmt vet race
