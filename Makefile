GO ?= go

.PHONY: all build test race bench bench-baseline bench-compare cache-bench ci fmt vet staticcheck tables chirond serve-smoke obs-smoke soak udp-soak fuzz

# Benchmark regression rails: bench-baseline runs the figure/table suite
# with -benchmem and records it as $(BENCH_JSON) (ns/op, allocs/op and the
# plans_per_sec planner-throughput metric, plus a run manifest);
# bench-compare re-runs the suite and fails on >10% ns/op regressions
# against that baseline. Both run each benchmark $(BENCH_COUNT) times and
# benchjson keeps the fastest repetition — at a 20x iteration budget the
# sub-ms benchmarks are otherwise pure scheduler noise and back-to-back
# identical runs trip the 10% gate.
BENCH_JSON    ?= BENCH_pr10.json
BENCH_PATTERN ?= ^(BenchmarkFig|BenchmarkTable|BenchmarkGateway|BenchmarkUDP|BenchmarkCache)
BENCH_TIME    ?= 20x
BENCH_COUNT   ?= 5
# The hedging rail drives 200 wall-clock requests per iteration (nominal
# time, no compression — see BenchmarkHedgedInvoke), so it gets a small
# separate iteration budget instead of the 20x the sub-ms rails need.
HEDGE_BENCH_TIME  ?= 3x
HEDGE_BENCH_COUNT ?= 2

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

bench-baseline:
	( $(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) . ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkHedgedInvoke$$' -benchmem -benchtime=$(HEDGE_BENCH_TIME) -count=$(HEDGE_BENCH_COUNT) . ) \
		| $(GO) run ./cmd/benchjson -label baseline -out $(BENCH_JSON)
	@echo "baseline written to $(BENCH_JSON)"

bench-compare:
	( $(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) . ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkHedgedInvoke$$' -benchmem -benchtime=$(HEDGE_BENCH_TIME) -count=$(HEDGE_BENCH_COUNT) . ) \
		| $(GO) run ./cmd/benchjson -label current -out /tmp/bench-current.json
	$(GO) run ./cmd/benchjson -compare -threshold 0.10 $(BENCH_JSON) /tmp/bench-current.json

# cache-bench runs just the cache policy rails (hit-heavy, scan-flood,
# serve traffic mix, stampede) with the hit_rate / loads-per-op columns
# the per-cache policy defaults were picked from (see DESIGN.md §12).
cache-bench:
	$(GO) test -run='^$$' -bench='^BenchmarkCache' -benchmem -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) .

# chirond builds the serving daemon; serve-smoke boots it on an
# ephemeral port, drives 200 invocations of the SocialNetwork workload
# against itself (closed loop, 8 workers), and exits cleanly.
chirond:
	$(GO) build -o bin/chirond ./cmd/chirond

serve-smoke: chirond
	./bin/chirond -addr 127.0.0.1:0 -scale 0.01 -preload SocialNetwork -plan \
		-selfbench 200 -selfbench-conc 8

# obs-smoke black-box tests the observability plane: boot chirond with
# an impossible 1ms SLO, drive 200 violating invocations, then require
# a strict-parsing /metrics with a tripped burn alert, an slo-tagged
# trace in /debug/flight, and that trace fetchable as Chrome JSON.
obs-smoke: chirond
	./scripts/obs_smoke.sh

soak:
	$(GO) build -o bin/soak ./cmd/soak

# udp-soak black-box tests the binary ingress plane: boot chirond with
# -udp, drive it closed-loop for a few seconds, require zero dropped
# completions, a still-zero packets-filtered counter (a healthy client
# never emits a malformed datagram) and a clean SIGTERM drain.
udp-soak: chirond soak
	./scripts/udp_soak.sh

# fuzz runs the UDP packet-parser fuzzer for a fixed iteration budget
# (the same budget CI runs); FUZZ_TIME accepts Nx or a duration.
FUZZ_TIME ?= 10s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseHeader -fuzztime=$(FUZZ_TIME) ./internal/udp/

# tables regenerates every figure/table into results/.
tables:
	$(GO) run ./cmd/chiron-bench -out results
	$(GO) run ./cmd/chiron-bench -exp ablations -out results

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck catches the reinvented-stdlib class of bug (e.g. the
# hand-rolled insertion sort that sort.Strings replaced) plus dead code
# and misuse vet misses. The binary is optional locally; CI installs it,
# and runs without it just skip with a notice.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# ci is the full gate: formatting, static analysis, race-enabled tests.
ci: fmt vet staticcheck race
