// Cache benchmarks: the PR-8 rails that picked each cache's default
// policy (BENCH_pr8.json). Every policy benchmark reports hit_rate next
// to ns/op — `benchjson compare` prints both columns — because for a
// cache the two trade off: a policy that is a little slower per lookup
// but keeps the working set resident under a scan flood wins overall.
//
//	make cache-bench            # just this file
//	make bench-baseline         # full tracked rails incl. these
package chiron_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"chiron/internal/model"
	"chiron/internal/parallel"
	"chiron/internal/predict"
	"chiron/internal/profiler"
	"chiron/internal/workloads"
	"chiron/internal/wrap"
)

var cachePolicies = []parallel.Policy{parallel.PolicyLRU, parallel.Policy2Q, parallel.PolicyLFU}

// benchCacheMix is the shared harness for the traffic-mix benchmarks:
// one benchmark op is a full round of batched accesses — 4 workers each
// walking their own pregenerated 4096-key sequence concurrently — so
// even the rails' -benchtime=20x samples ~320k lookups and the reported
// hit_rate is a steady-state figure, not warm-up noise. The sequences
// are fixed across iterations (seeded rng), so every policy sees the
// identical access stream and the hit_rate column is directly
// comparable between sub-benchmarks.
func benchCacheMix(b *testing.B, pol parallel.Policy, capacity int, gen func(rng *rand.Rand) string) {
	const workers, perWorker = 4, 4096
	seqs := make([][]string, workers)
	for w := range seqs {
		rng := rand.New(rand.NewSource(int64(w + 1)))
		seqs[w] = make([]string, perWorker)
		for i := range seqs[w] {
			seqs[w][i] = gen(rng)
		}
	}
	c := parallel.NewCachePolicy[string, int](pol, capacity, 16, parallel.StringHash)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seq []string) {
				defer wg.Done()
				for _, k := range seq {
					if _, ok := c.Get(k); !ok {
						c.Put(k, 0)
					}
				}
			}(seqs[w])
		}
		wg.Wait()
	}
	b.StopTimer()
	st := c.Stats()
	if lookups := st.Hits + st.Misses; lookups > 0 {
		b.ReportMetric(float64(st.Hits)/float64(lookups), "hit_rate")
	}
}

// BenchmarkCacheHitHeavy is the steady-state regime every chiron cache
// spends most of its life in: a working set that fits (512 keys in a
// 4096-entry cache). Expected hit rate ~1.0 for every policy; the
// column that differentiates them here is ns/op — the price of the
// policy's promotion bookkeeping on the hot path (LRU relinks a ring
// node, 2Q mostly holds still in A1in/Am, LFU sifts a heap).
func BenchmarkCacheHitHeavy(b *testing.B) {
	const keys, capacity = 512, 4096
	for _, pol := range cachePolicies {
		b.Run(string(pol), func(b *testing.B) {
			benchCacheMix(b, pol, capacity, func(rng *rand.Rand) string {
				return fmt.Sprintf("fn-%03d", rng.Intn(keys))
			})
		})
	}
}

// BenchmarkCacheScanFlood is the adversarial regime PR 8 added 2Q for: a
// hot set that fits (256 keys, 512 capacity) but shares the cache with
// an equal stream of one-shot scan keys (50% hot / 50% never repeated —
// a re-plan sweeping candidate groups it will never price again, a
// junk-name flood against serve's negative cache). Between two touches
// of a hot key, enough scan keys pass through to cycle an LRU shard;
// 2Q parks them in the probation queue so the protected queue keeps
// answering. The hit_rate column is the decision variable here, not
// ns/op: the ceiling is 0.5 (scan keys never repeat), and the gap to it
// is hot-set evictions.
func BenchmarkCacheScanFlood(b *testing.B) {
	const hot, capacity = 256, 512
	for _, pol := range cachePolicies {
		b.Run(string(pol), func(b *testing.B) {
			scan := 0
			benchCacheMix(b, pol, capacity, func(rng *rand.Rand) string {
				if rng.Intn(2) == 0 {
					scan++
					return fmt.Sprintf("scan-%d-%d", rng.Int63(), scan)
				}
				return fmt.Sprintf("hot-%03d", rng.Intn(hot))
			})
		})
	}
}

// BenchmarkCacheServeMix replays serve's negative-lookup traffic shape
// against a cache sized like the default negative cache (1024): a
// handful of hot typo'd names retried continuously (clients with a
// stale workflow name) drowned in a long Zipf tail of junk names where
// most junk still repeats occasionally. The policy that keeps both the
// retried typos and the recurring head of the tail resident wins; this
// mix is why the negative cache defaults to 2q.
func BenchmarkCacheServeMix(b *testing.B) {
	const capacity, hotNames, tailNames = 1024, 16, 65536
	for _, pol := range cachePolicies {
		b.Run(string(pol), func(b *testing.B) {
			benchCacheMix(b, pol, capacity, func(rng *rand.Rand) string {
				if rng.Intn(4) == 0 {
					return fmt.Sprintf("typo-%02d", rng.Intn(hotNames))
				}
				zipf := rand.NewZipf(rng, 1.2, 1, tailNames-1)
				return fmt.Sprintf("junk-%d", zipf.Uint64())
			})
		})
	}
}

// stampedeWork is the benchmark loader: ~20µs of CPU with scheduler
// yield points, modelling a real loader (a GIL simulation allocates and
// gets preempted) so redundant naive loads overlap even on one core.
func stampedeWork() int {
	s := 1
	for i := 0; i < 20; i++ {
		for j := 0; j < 1000; j++ {
			s = s*31 + j
		}
		runtime.Gosched()
	}
	return s
}

// BenchmarkCacheStampede prices the singleflight loader against the
// check-then-compute idiom it replaced. Each op is one stampede round:
// 16 goroutines race a cold key through a yielding ~20µs loader. The
// loads/op column is the story — singleflight runs the loader once per
// round while naive runs it up to 16 times — and ns/op shows the round
// completing faster because 15 goroutines wait instead of burning the
// CPU on redundant work.
func BenchmarkCacheStampede(b *testing.B) {
	const racers = 16
	round := func(b *testing.B, miss func(c *parallel.Cache[int, int], key int)) {
		c := parallel.NewCache[int, int](1<<20, 16, func(k int) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var ready, wg sync.WaitGroup
			ready.Add(racers)
			start := make(chan struct{})
			for g := 0; g < racers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ready.Done()
					<-start
					miss(c, i)
				}()
			}
			ready.Wait()
			close(start)
			wg.Wait()
		}
		b.StopTimer()
		st := c.Stats()
		b.ReportMetric(float64(st.Misses-st.Shared)/float64(b.N), "loads/op")
	}
	b.Run("singleflight", func(b *testing.B) {
		round(b, func(c *parallel.Cache[int, int], key int) {
			c.GetOrCompute(key, stampedeWork)
		})
	})
	b.Run("naive", func(b *testing.B) {
		round(b, func(c *parallel.Cache[int, int], key int) {
			if _, ok := c.Get(key); !ok {
				c.Put(key, stampedeWork())
			}
		})
	})
}

// BenchmarkCachePredictStampede is the CI-gated stampede rail (see
// .github/workflows/ci.yml bench-smoke): one op is a 16-goroutine race
// on a cold prediction-cache key resolving through the real GIL
// simulation. The sims/op column must stay at 1.0 — a regression to
// per-goroutine simulation multiplies ns/op and trips the gate against
// BENCH_pr8.json.
func BenchmarkCachePredictStampede(b *testing.B) {
	const racers = 16
	w := workloads.FINRA(8)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	p := predict.New(model.Default(), set)
	names := make([]string, 0, 8)
	for _, f := range w.Stages[1].Functions {
		names = append(names, f.Name)
	}
	// One probe run outside the timed region so the first iteration pays
	// the same purge-then-stampede cost as the rest.
	if _, err := p.ExecThreadsCached(names, wrap.IsoNone); err != nil {
		b.Fatal(err)
	}
	before := predict.ExecCacheStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predict.PurgeExecCache()
		var wg sync.WaitGroup
		for g := 0; g < racers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, _, err := p.ExecThreadsCachedHit(names, wrap.IsoNone); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	after := predict.ExecCacheStats()
	sims := (after.Misses - before.Misses) - (after.Shared - before.Shared)
	b.ReportMetric(float64(sims)/float64(b.N), "sims/op")
}

// BenchmarkCacheProfilerStampede is BenchmarkCachePredictStampede for
// the profiler memo: 16 goroutines race ProfileFunction on a purged
// spec; one trace-record/parse per round, one clone per caller.
func BenchmarkCacheProfilerStampede(b *testing.B) {
	const racers = 16
	spec := workloads.FINRA(1).Stages[0].Functions[0]
	opt := profiler.DefaultOptions()
	if _, err := profiler.ProfileFunction(spec, opt); err != nil {
		b.Fatal(err)
	}
	before := profiler.CacheStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profiler.PurgeCache()
		var wg sync.WaitGroup
		for g := 0; g < racers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := profiler.ProfileFunction(spec, opt); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	after := profiler.CacheStats()
	profiles := (after.Misses - before.Misses) - (after.Shared - before.Shared)
	b.ReportMetric(float64(profiles)/float64(b.N), "profiles/op")
}

// BenchmarkCacheGetOrComputeWarm is the overhead floor: GetOrCompute on
// an always-warm key, uncontended. This is what predict's hot path would
// pay if it skipped the Get+ComputeMissed pairing — any closure
// allocation would show in allocs/op, which is exactly why the pairing
// exists (compare TestCachedExecThreadsHitDoesNotAllocate).
func BenchmarkCacheGetOrComputeWarm(b *testing.B) {
	c := parallel.NewCache[string, int](64, 4, parallel.StringHash)
	c.Put("warm", 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := c.GetOrCompute("warm", func() int { return 7 }); v != 7 {
			b.Fatal("bad value")
		}
	}
}
