package chiron_test

import (
	"fmt"
	"time"

	"chiron"
)

// ExampleNewWorkflow builds a fan-out workflow and inspects its shape.
func ExampleNewWorkflow() {
	head := &chiron.Function{
		Name: "parse", Runtime: chiron.Python,
		Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: 2 * time.Millisecond}},
		MemMB:    2,
	}
	var workers []*chiron.Function
	for _, n := range []string{"check-a", "check-b", "check-c"} {
		workers = append(workers, &chiron.Function{
			Name: n, Runtime: chiron.Python,
			Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: 4 * time.Millisecond}},
			MemMB:    1,
		})
	}
	w, err := chiron.NewWorkflow("audit", 0, []*chiron.Function{head}, workers)
	if err != nil {
		panic(err)
	}
	fmt.Println(w.Name, len(w.Stages), w.NumFunctions(), w.MaxParallelism())
	// Output: audit 2 4 3
}

// ExampleGraph_Level converts a DAG submission into execution stages by
// topological depth.
func ExampleGraph_Level() {
	fn := func(name string) *chiron.Function {
		return &chiron.Function{
			Name: name, Runtime: chiron.Python,
			Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: time.Millisecond}},
			MemMB:    1,
		}
	}
	g := &chiron.Graph{
		Name: "diamond",
		Nodes: []chiron.GraphNode{
			{Spec: fn("join"), Deps: []string{"left", "right"}},
			{Spec: fn("start")},
			{Spec: fn("left"), Deps: []string{"start"}},
			{Spec: fn("right"), Deps: []string{"start"}},
		},
	}
	w, err := g.Level()
	if err != nil {
		panic(err)
	}
	for i, st := range w.Stages {
		fmt.Printf("stage %d:", i)
		for _, f := range st.Functions {
			fmt.Printf(" %s", f.Name)
		}
		fmt.Println()
	}
	// Output:
	// stage 0: start
	// stage 1: left right
	// stage 2: join
}

// ExampleSystem_Plan shows a one-to-one baseline deployment: every
// function gets its own single-CPU sandbox.
func ExampleSystem_Plan() {
	w := chiron.FINRA(5)
	plan, err := chiron.OpenFaaS(chiron.DefaultConstants()).Plan(w, nil, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.NumWraps(), plan.TotalCPUs())
	// Output: 6 6
}

// ExampleMean shows the latency statistics helpers.
func ExampleMean() {
	lats := []time.Duration{
		90 * time.Millisecond, 100 * time.Millisecond,
		110 * time.Millisecond, 200 * time.Millisecond,
	}
	fmt.Println(chiron.Mean(lats))
	fmt.Println(chiron.Percentile(lats, 0.5))
	fmt.Println(chiron.ViolationRate(lats, 150*time.Millisecond))
	// Output:
	// 125ms
	// 100ms
	// 0.25
}

// ExampleDeploy runs the whole pipeline: profile, PGP planning under an
// SLO, and one executed request.
func ExampleDeploy() {
	w := chiron.FINRA(10)
	dep, err := chiron.Deploy(w, 300*time.Millisecond)
	if err != nil {
		panic(err)
	}
	res, err := dep.Invoke(1)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.E2E <= 300*time.Millisecond, dep.Plan.NumWraps() >= 1)
	// Output: true true
}
