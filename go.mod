module chiron

go 1.22
