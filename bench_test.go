// Benchmarks: one testing.B per figure/table of the paper's evaluation
// (each iteration regenerates the full experiment, so `go test -bench=.`
// doubles as the reproduction harness), plus micro-benchmarks of the hot
// substrates (GIL simulation, wrap execution, PGP planning, the engine).
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig13 -benchtime=1x   # one-shot table
package chiron_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chiron"
	"chiron/internal/behavior"
	"chiron/internal/engine"
	"chiron/internal/experiments"
	"chiron/internal/gil"
	"chiron/internal/model"
	"chiron/internal/obs"
	"chiron/internal/parallel"
	"chiron/internal/pgp"
	"chiron/internal/platform"
	"chiron/internal/predict"
	"chiron/internal/profiler"
	"chiron/internal/serve"
	"chiron/internal/udp"
	"chiron/internal/workloads"
)

// benchExperiment runs one experiment per iteration. Quick mode keeps
// -bench=. affordable; run cmd/chiron-bench for the full-size tables.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Default()
	cfg.Quick = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig03SchedulingOverhead(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig04Transmission(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig05Timelines(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig06LatencyComparison(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig07NoGILCPUs(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig08Resources(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkTable01Isolation(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkFig11PGPTrace(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig12PredictionError(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13OverallLatency(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14SLOViolations(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15LatencyCDF(b *testing.B)         { benchExperiment(b, "fig15") }
func BenchmarkFig16MemoryThroughput(b *testing.B)   { benchExperiment(b, "fig16") }
func BenchmarkFig17CPUAllocation(b *testing.B)      { benchExperiment(b, "fig17") }
func BenchmarkFig18NoGIL(b *testing.B)              { benchExperiment(b, "fig18") }
func BenchmarkFig19DollarCost(b *testing.B)         { benchExperiment(b, "fig19") }

// ---- substrate micro-benchmarks ----

func gilSpecs(n int) []*behavior.Spec {
	specs := make([]*behavior.Spec, n)
	for i := range specs {
		specs[i] = &behavior.Spec{
			Name: "f", Runtime: behavior.Python,
			Segments: []behavior.Segment{
				{Kind: behavior.CPU, Dur: 2 * time.Millisecond},
				{Kind: behavior.NetIO, Dur: time.Millisecond},
				{Kind: behavior.CPU, Dur: time.Millisecond},
			},
			MemMB: 1,
		}
	}
	return specs
}

// BenchmarkGILSimulate50Threads measures Algorithm 1's core: simulating
// 50 GIL-contended threads (the Predictor's inner loop).
func BenchmarkGILSimulate50Threads(b *testing.B) {
	specs := gilSpecs(50)
	opt := gil.Options{Procs: 1, Quantum: 5 * time.Millisecond, Spawn: gil.MainThread,
		SpawnBatch: 8, SpawnCost: 300 * time.Microsecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gil.Simulate(specs, opt)
	}
}

// BenchmarkGILSimulate200Pool measures the pool scheduler at FINRA-200
// scale.
func BenchmarkGILSimulate200Pool(b *testing.B) {
	specs := gilSpecs(200)
	opt := gil.Options{Procs: 8, Quantum: 5 * time.Millisecond, Spawn: gil.Dispatcher,
		SpawnCost: 450 * time.Microsecond, Workers: 200}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gil.Simulate(specs, opt)
	}
}

// BenchmarkProfileWorkflow measures the Profiler on the FINRA-50 workflow
// (solo runs, strace recording, log parsing, rescaling).
func BenchmarkProfileWorkflow(b *testing.B) {
	w := workloads.FINRA(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPGPPlanFINRA100 measures the scheduler on the paper's Figure 11
// input: FINRA-100 under a 200 ms SLO.
func BenchmarkPGPPlanFINRA100(b *testing.B) {
	w := workloads.FINRA(100)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pgp.Plan(w, set, pgp.Options{Const: model.Default(), SLO: 200 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPGPPlanHeterogeneous measures Kernighan-Lin refinement on the
// mixed-class SLApp-V (the homogeneous shortcut does not apply).
func BenchmarkPGPPlanHeterogeneous(b *testing.B) {
	w := workloads.SLAppV()
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pgp.Plan(w, set, pgp.Options{Const: model.Default(), SLO: 60 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRequestFINRA50 measures one ground-truth request under
// the Chiron deployment.
func BenchmarkEngineRequestFINRA50(b *testing.B) {
	w := workloads.FINRA(50)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	sys := platform.Chiron(model.Default())
	plan, err := sys.Plan(w, set, 300*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	env := sys.Env()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Seed = int64(i)
		if _, err := engine.Run(w, plan, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRequestASF200 measures the most event-heavy baseline:
// Step Functions driving FINRA-200 one-to-one.
func BenchmarkEngineRequestASF200(b *testing.B) {
	w := workloads.FINRA(200)
	sys := platform.ASF(model.Default())
	plan, err := sys.Plan(w, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	env := sys.Env()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Seed = int64(i)
		if _, err := engine.Run(w, plan, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeployFacade measures the whole public-API path: profile +
// plan + one invocation.
func BenchmarkDeployFacade(b *testing.B) {
	w := chiron.SocialNetwork()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dep, err := chiron.Deploy(w, 80*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dep.Invoke(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- parallel harness benchmarks ----

// benchSuiteQuick regenerates a representative slice of the evaluation
// (one experiment per fan-out shape) at a given worker-pool width.
func benchSuiteQuick(b *testing.B, workers int) {
	b.Helper()
	prev := parallel.Workers()
	parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	ids := []string{"fig3", "fig6", "fig13", "fig15"}
	cfg := experiments.Default()
	cfg.Quick = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			if _, err := experiments.Run(id, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSuiteQuickSequential is the 1-worker baseline for the harness:
// compare against BenchmarkSuiteQuickParallel for the multi-core speedup
// (tables are byte-identical either way).
func BenchmarkSuiteQuickSequential(b *testing.B) { benchSuiteQuick(b, 1) }

// BenchmarkSuiteQuickParallel runs the same slice with the pool at
// NumCPU workers.
func BenchmarkSuiteQuickParallel(b *testing.B) { benchSuiteQuick(b, runtime.NumCPU()) }

// BenchmarkPGPPlanCachedReplan measures a warm re-plan: the second and
// later Plan calls for an unchanged workload are served almost entirely
// from the shared prediction cache (the adapt controller's steady-state
// path). The first iteration pays the cold simulations; b.N iterations
// amortize to the cached cost. Reported alongside: the cache hit rate.
func BenchmarkPGPPlanCachedReplan(b *testing.B) {
	w := workloads.FINRA(100)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	opt := pgp.Options{Const: model.Default(), SLO: 200 * time.Millisecond}
	if _, err := pgp.Plan(w, set, opt); err != nil { // warm the cache
		b.Fatal(err)
	}
	before := predict.ExecCacheStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pgp.Plan(w, set, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := predict.ExecCacheStats()
	lookups := (after.Hits - before.Hits) + (after.Misses - before.Misses)
	if lookups > 0 {
		b.ReportMetric(float64(after.Hits-before.Hits)/float64(lookups), "hit-rate")
	}
}

// BenchmarkGILSimulatePooled50Threads is BenchmarkGILSimulate50Threads on
// a reused Sim — the zero-copy path PGP's candidate pricing runs on. The
// allocs/op column is the guarded budget: 0 once warm.
func BenchmarkGILSimulatePooled50Threads(b *testing.B) {
	specs := gilSpecs(50)
	opt := gil.Options{Procs: 1, Quantum: 5 * time.Millisecond, Spawn: gil.MainThread,
		SpawnBatch: 8, SpawnCost: 300 * time.Microsecond}
	s := gil.NewSim()
	s.Simulate(specs, opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Simulate(specs, opt)
	}
}

// BenchmarkGILSimulatePooled200Pool is the dispatcher scheduler at
// FINRA-200 scale on a reused Sim.
func BenchmarkGILSimulatePooled200Pool(b *testing.B) {
	specs := gilSpecs(200)
	opt := gil.Options{Procs: 8, Quantum: 5 * time.Millisecond, Spawn: gil.Dispatcher,
		SpawnCost: 450 * time.Microsecond, Workers: 200}
	s := gil.NewSim()
	s.Simulate(specs, opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Simulate(specs, opt)
	}
}

// BenchmarkGatewayInvoke is one end-to-end request through the serving
// plane — HTTP in, admission, warm-pool lease, live execution of the
// SocialNetwork workload, JSON out — with modelled time compressed to
// 0.1% so the measured cost is the gateway itself plus the (scaled)
// execution, not the paper's wall-clock sleeps. The first request boots
// the instance cold outside the timed region; every iteration after is
// the steady-state warm path.
func BenchmarkGatewayInvoke(b *testing.B) {
	app := serve.New(serve.Options{Scale: 0.001, Reg: obs.NewRegistry()})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = app.Shutdown(ctx)
	}()
	if _, err := app.RegisterBuiltin("SocialNetwork"); err != nil {
		b.Fatal(err)
	}
	if _, err := app.PlanWorkflow("SocialNetwork", 0); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(app.Handler())
	defer srv.Close()
	url := srv.URL + "/workflows/SocialNetwork/invoke"
	post := func() {
		resp, err := http.Post(url, "application/json", nil)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("invoke: HTTP %d", resp.StatusCode)
		}
	}
	post() // cold boot outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

// BenchmarkUDPInvoke is the binary ingress plane's answer to
// BenchmarkGatewayInvoke: the same SocialNetwork invocation at the same
// 0.1% time scale, but over the UDP protocol and closed-loop at the
// protocol's natural width — 32 workers, each with one connected,
// token-handshaked client and one invocation outstanding. ns/op is
// wall-clock per completed invocation, so the invokes/sec ratio against
// the serial HTTP gateway benchmark is the headline throughput claim
// (the per-request ingress cost itself is BenchmarkUDPPacketPath).
func BenchmarkUDPInvoke(b *testing.B) {
	const conc = 32
	app := serve.New(serve.Options{Scale: 0.001, MaxConcurrency: conc, Reg: obs.NewRegistry()})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = app.Shutdown(ctx)
	}()
	if _, err := app.RegisterBuiltin("SocialNetwork"); err != nil {
		b.Fatal(err)
	}
	if _, err := app.PlanWorkflow("SocialNetwork", 0); err != nil {
		b.Fatal(err)
	}
	srv, err := udp.New(app, udp.Options{Reg: app.Registry(), Workers: conc})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	hash := udp.HashWorkflow("SocialNetwork")
	clients := make([]*udp.Client, conc)
	for i := range clients {
		c, err := udp.Dial(srv.Addr().String(), 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	// Boot the warm pool to full width outside the timed region, like
	// the gateway benchmark's single cold post.
	var warm sync.WaitGroup
	for _, c := range clients {
		warm.Add(1)
		go func(c *udp.Client) {
			defer warm.Done()
			if r, err := c.Invoke(hash, nil, 0, 0); err != nil || r.Status != udp.StatusOK {
				b.Errorf("warmup: %+v err=%v", r, err)
			}
		}(c)
	}
	warm.Wait()
	if b.Failed() {
		b.FailNow()
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *udp.Client) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				r, err := c.Invoke(hash, nil, 0, 0)
				if err != nil {
					b.Error(err)
					return
				}
				if r.Status != udp.StatusOK {
					b.Errorf("status %d", r.Status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// BenchmarkUDPPacketPath is the per-packet ingress cost in isolation:
// filter, header parse, token verification and shared-queue admission
// (plus release), exactly what the receive loop and worker spend on one
// datagram before modelled execution begins. The acceptance bar is 0
// allocs/op — the UDP plane must be able to shed or admit a flood
// without touching the garbage collector.
func BenchmarkUDPPacketPath(b *testing.B) {
	app := serve.New(serve.Options{Scale: 0.001, Reg: obs.NewRegistry()})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = app.Shutdown(ctx)
	}()
	if _, err := app.RegisterBuiltin("SocialNetwork"); err != nil {
		b.Fatal(err)
	}
	if _, err := app.PlanWorkflow("SocialNetwork", 0); err != nil {
		b.Fatal(err)
	}

	secret, err := udp.NewSecret()
	if err != nil {
		b.Fatal(err)
	}
	addr := netip.MustParseAddrPort("127.0.0.1:40000")
	var pkt [udp.HeaderSize + 16]byte
	if _, err := udp.EncodeInvoke(pkt[:], secret.Token(addr), udp.HashWorkflow("SocialNetwork"), 1, 0, 0, []byte("0123456789abcdef")); err != nil {
		b.Fatal(err)
	}

	ctx := context.Background()
	var h udp.Header
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !udp.Filter(pkt[:]) {
			b.Fatal("filter dropped a valid packet")
		}
		if err := udp.ParseHeader(pkt[:], &h); err != nil {
			b.Fatal(err)
		}
		if h.Token != secret.Token(addr) {
			b.Fatal("token mismatch")
		}
		ad, err := app.AdmitHash(ctx, h.Hash)
		if err != nil {
			b.Fatal(err)
		}
		ad.Release()
	}
}

// BenchmarkHedgedInvoke is the straggler rail: the TailHeavy workload
// (4% of executions stall an extra 200ms that no model predicted),
// served closed-loop with hedging off and on. Each iteration drives 200
// requests at concurrency 8; p99_ms is the 99th-percentile reported
// total latency across every request of the run and hedge_rate the
// fraction of requests that armed a hedge (the duplicate-work budget).
// Off, p99 sits on the tail (~217ms); on, the hedge re-issues a
// straggling request on a warm instance and p99 collapses toward
// hedge-delay + base.
func BenchmarkHedgedInvoke(b *testing.B) {
	for _, mode := range []struct {
		name     string
		quantile float64
	}{{"off", 0}, {"on", 3}} {
		b.Run(mode.name, func(b *testing.B) {
			const (
				reqPerIter = 200
				conc       = 8
			)
			app := serve.New(serve.Options{
				// Nominal time: at higher compression, timer overshoot on
				// the modelled sleeps (a fixed wall cost) dominates the
				// base latency and every request looks like a straggler.
				Scale:          1,
				MaxConcurrency: 16,
				MaxQueue:       1024,
				HedgeQuantile:  mode.quantile,
				// A window the bench never fills: the adaptive controller
				// would read the tail as drift and its plan swaps would
				// cold-storm both modes, measuring adaptation instead of
				// hedging.
				Window: 1 << 20,
				Reg:    obs.NewRegistry(),
			})
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = app.Shutdown(ctx)
			}()
			if _, err := app.RegisterBuiltin("TailHeavy"); err != nil {
				b.Fatal(err)
			}
			if _, err := app.PlanWorkflow("TailHeavy", 0); err != nil {
				b.Fatal(err)
			}
			// Prewarm a full complement of instances so hedges land on
			// warm capacity (steady state), not on a cold boot.
			var warm sync.WaitGroup
			for i := 0; i < 16; i++ {
				warm.Add(1)
				go func() {
					defer warm.Done()
					if _, err := app.Invoke(context.Background(), "TailHeavy", nil); err != nil {
						b.Error(err)
					}
				}()
			}
			warm.Wait()
			if b.Failed() {
				b.FailNow()
			}

			var mu sync.Mutex
			lat := make([]float64, 0, b.N*reqPerIter)
			hedgedN := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < conc; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for j := 0; j < reqPerIter/conc; j++ {
							res, err := app.Invoke(context.Background(), "TailHeavy", nil)
							if err != nil {
								b.Error(err)
								return
							}
							mu.Lock()
							lat = append(lat, res.TotalMs)
							if res.Hedged {
								hedgedN++
							}
							mu.Unlock()
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			sort.Float64s(lat)
			if len(lat) > 0 {
				b.ReportMetric(lat[len(lat)*99/100], "p99_ms")
				b.ReportMetric(float64(hedgedN)/float64(len(lat)), "hedge_rate")
			}
		})
	}
}
