// Command benchjson turns `go test -bench` output into the repo's
// BENCH_*.json perf-trajectory records and gates regressions against a
// baseline.
//
// Modes:
//
//	# parse: stdin or -in is go-test bench output -> one BenchReport
//	go test -bench 'BenchmarkFig' -benchmem . | benchjson -label after -out cur.json
//
//	# merge: baseline + current reports -> committed before/after comparison
//	benchjson -merge base.json cur.json -out BENCH_pr3.json
//
//	# compare: exit 1 when any benchmark slows down past -threshold
//	benchjson -compare base.json cur.json -threshold 0.10
//
// compare accepts either plain BenchReport files or a merged comparison
// file (its Current side is used), so CI can gate on the committed
// BENCH_*.json directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"

	"chiron/internal/obs"
	"chiron/internal/parallel"
)

func main() {
	var (
		in        = flag.String("in", "", "bench output file (default stdin)")
		out       = flag.String("out", "", "output JSON file (default stdout)")
		label     = flag.String("label", "run", "label recorded in the report")
		merge     = flag.Bool("merge", false, "merge two reports (baseline current) into a comparison")
		compare   = flag.Bool("compare", false, "compare two report files (baseline current) and fail on regressions")
		threshold = flag.Float64("threshold", 0.10, "fractional ns/op slowdown that fails -compare / flags -merge deltas")
	)
	flag.Parse()

	var err error
	switch {
	case *compare:
		err = runCompare(flag.Args(), *threshold)
	case *merge:
		err = runMerge(flag.Args(), *threshold, *out)
	default:
		err = runParse(*in, *label, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func runParse(in, label, out string) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	results, err := obs.ParseGoBench(r)
	if err != nil {
		return err
	}
	report := &obs.BenchReport{
		Label: label,
		Manifest: &obs.Manifest{
			Tool:        "benchjson",
			GoVersion:   runtime.Version(),
			Version:     obs.ReadBuild().Version,
			VCSRevision: obs.ReadBuild().Revision,
			Workers:     parallel.Workers(),
		},
		Benchmarks: results,
	}
	return writeJSON(out, report)
}

// loadReport reads a BenchReport, accepting either a plain report or a
// merged comparison file (whose Current side is taken).
func loadReport(path string) (*obs.BenchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cmp obs.BenchComparison
	if err := json.Unmarshal(b, &cmp); err == nil && cmp.Current != nil && len(cmp.Current.Benchmarks) > 0 {
		return cmp.Current, nil
	}
	var rep obs.BenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &rep, nil
}

func runMerge(args []string, threshold float64, out string) error {
	if len(args) != 2 {
		return fmt.Errorf("-merge needs exactly two report files (baseline current)")
	}
	base, err := loadReport(args[0])
	if err != nil {
		return err
	}
	cur, err := loadReport(args[1])
	if err != nil {
		return err
	}
	return writeJSON(out, obs.CompareBench(base, cur, threshold))
}

func runCompare(args []string, threshold float64) error {
	if len(args) != 2 {
		return fmt.Errorf("-compare needs exactly two report files (baseline current)")
	}
	base, err := loadReport(args[0])
	if err != nil {
		return err
	}
	cur, err := loadReport(args[1])
	if err != nil {
		return err
	}
	cmp := obs.CompareBench(base, cur, threshold)
	for _, d := range cmp.Deltas {
		fmt.Println(compareLine(d, threshold))
	}
	if regs := cmp.Regressions(); len(regs) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(regs), threshold*100)
	}
	fmt.Printf("no regressions beyond %.0f%% across %d benchmarks\n", threshold*100, len(cmp.Deltas))
	return nil
}

// fmtRate renders one hit-rate column, or "n/a" for a missing or
// non-finite value — a benchmark that did zero ops reports hit_rate
// NaN, and the compare output must stay parseable.
func fmtRate(r *float64) string {
	if r == nil || math.IsNaN(*r) || math.IsInf(*r, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", *r)
}

// compareLine formats one delta row. Non-finite ratio and hit-rate
// columns (zero-op benchmarks, zero baselines in hand-edited reports)
// render as "n/a" instead of NaN/Inf.
func compareLine(d obs.BenchDelta, threshold float64) string {
	mark := "ok"
	if d.Regression {
		mark = "REGRESSION"
	} else if d.Ratio < 1-threshold {
		mark = "improved"
	}
	ratio := "n/a"
	if !math.IsNaN(d.Ratio) && !math.IsInf(d.Ratio, 0) {
		ratio = fmt.Sprintf("%.2fx", d.Ratio)
	}
	// Cache benchmarks report a hit_rate metric next to ns/op; show
	// both columns so a policy change is judged on lookup cost AND
	// residency together.
	rate := ""
	if d.OldHitRate != nil && d.NewHitRate != nil {
		rate = fmt.Sprintf("  hit %s -> %s", fmtRate(d.OldHitRate), fmtRate(d.NewHitRate))
	} else if d.NewHitRate != nil {
		rate = fmt.Sprintf("  hit %s", fmtRate(d.NewHitRate))
	}
	return fmt.Sprintf("%-40s %12.0f -> %12.0f ns/op  (%s)  %s%s",
		d.Name, d.OldNs, d.NewNs, ratio, mark, rate)
}

func writeJSON(out string, v any) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
