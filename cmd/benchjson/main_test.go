package main

import (
	"math"
	"strings"
	"testing"

	"chiron/internal/obs"
)

// TestCompareLineNonFinite: zero-op benchmarks produce NaN hit rates
// and hand-edited baselines can produce NaN/Inf ratios; the compare
// table must render "n/a" instead, so `make bench-compare` output stays
// parseable.
func TestCompareLineNonFinite(t *testing.T) {
	nan := math.NaN()
	ok := 0.95
	cases := []struct {
		name string
		d    obs.BenchDelta
		want []string
		ban  []string
	}{
		{
			name: "nan ratio",
			d:    obs.BenchDelta{Name: "BenchmarkX", OldNs: 0, NewNs: 100, Ratio: nan},
			want: []string{"(n/a)"},
			ban:  []string{"NaN"},
		},
		{
			name: "inf ratio",
			d:    obs.BenchDelta{Name: "BenchmarkX", OldNs: 0, NewNs: 100, Ratio: math.Inf(1)},
			want: []string{"(n/a)"},
			ban:  []string{"Inf"},
		},
		{
			name: "nan hit rates",
			d: obs.BenchDelta{Name: "BenchmarkC", OldNs: 100, NewNs: 100, Ratio: 1,
				OldHitRate: &nan, NewHitRate: &ok},
			want: []string{"hit n/a -> 0.950", "(1.00x)"},
			ban:  []string{"NaN"},
		},
		{
			name: "healthy row unchanged",
			d: obs.BenchDelta{Name: "BenchmarkC", OldNs: 200, NewNs: 100, Ratio: 0.5,
				OldHitRate: &ok, NewHitRate: &ok},
			want: []string{"(0.50x)", "improved", "hit 0.950 -> 0.950"},
		},
	}
	for _, tc := range cases {
		line := compareLine(tc.d, 0.10)
		for _, w := range tc.want {
			if !strings.Contains(line, w) {
				t.Errorf("%s: line %q missing %q", tc.name, line, w)
			}
		}
		for _, b := range tc.ban {
			if strings.Contains(line, b) {
				t.Errorf("%s: line %q contains %q", tc.name, line, b)
			}
		}
	}
}
