// Command chirond is the Chiron serving daemon: an HTTP gateway over
// internal/serve. It registers workflows, plans them with PGP, executes
// invocations on the live executor behind warm-wrap pools and admission
// control, and adapts plans to live latency drift. Adaptation is
// calibrated and hysteretic (-cooldown, -min-improve), a regressing
// swap rolls back automatically (-rollback-guard), and retired plan
// epochs (-plan-history) can be restored manually via
// POST /workflows/{name}/plan/rollback.
//
//	chirond -addr 127.0.0.1:8080 -preload SocialNetwork -plan -slo 300ms
//
// The daemon prints "chirond listening on http://HOST:PORT" once the
// listener is up (use -addr 127.0.0.1:0 for an ephemeral port and parse
// that line). SIGINT/SIGTERM drain gracefully: the listener closes,
// in-flight requests finish, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chiron/internal/loadgen"
	"chiron/internal/obs"
	"chiron/internal/obs/flight"
	"chiron/internal/parallel"
	"chiron/internal/predict"
	"chiron/internal/profiler"
	"chiron/internal/serve"
	"chiron/internal/udp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "chirond:", err)
		os.Exit(1)
	}
}

func run(argv []string, stdout, stderr *os.File) error {
	fs := flag.NewFlagSet("chirond", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		udpAddr      = fs.String("udp", "", "binary UDP ingress listen address (e.g. 127.0.0.1:9053; empty = disabled)")
		scale        = fs.Float64("scale", 1.0, "time scale for modelled durations (0.05 = 20x faster than nominal)")
		slo          = fs.Duration("slo", 0, "default latency SLO at plan time (0 = workflow SLO or auto)")
		timeout      = fs.Duration("timeout", 30*time.Second, "per-request execution timeout")
		maxConc      = fs.Int("max-concurrency", 0, "max concurrent executions per workflow (0 = 2x GOMAXPROCS)")
		maxQueue     = fs.Int("max-queue", 64, "admission queue depth per workflow")
		keepAlive    = fs.Duration("keepalive", time.Minute, "warm instance keep-alive")
		cooldown     = fs.Int("cooldown", 0, "min full windows between plan adaptations (0 = default 2)")
		minImp       = fs.Float64("min-improve", 0, "min-improvement gate fraction for adopting a fresh plan (0 = default 0.1)")
		rbGuard      = fs.Float64("rollback-guard", 0, "post-swap regression factor that triggers auto-rollback (0 = default 1.1)")
		history      = fs.Int("plan-history", 0, "retired plan epochs kept per workflow for rollback (0 = default 4)")
		preload      = fs.String("preload", "", "comma-separated builtin workloads to register at boot (e.g. SocialNetwork)")
		planBoot     = fs.Bool("plan", false, "plan preloaded workflows at boot")
		drainWait    = fs.Duration("drain", 30*time.Second, "max graceful drain on SIGTERM")
		selfbench    = fs.Int("selfbench", 0, "after boot, fire N closed-loop invocations at the first preloaded workflow, print stats and exit")
		benchConc    = fs.Int("selfbench-conc", 4, "selfbench closed-loop concurrency")
		flightRing   = fs.Int("flight-ring", 0, "retained flight traces kept for /debug/flight (0 = default 256)")
		flightSample = fs.Float64("flight-sample", 0, "flight recorder probabilistic sample rate for healthy traces (0 = default 0.01)")
		sloTarget    = fs.Float64("slo-target", 0, "SLO availability target for the burn-rate monitor, e.g. 0.99 (0 = default 0.99)")
		runtimeInt   = fs.Duration("runtime-interval", 5*time.Second, "runtime/metrics polling interval for chiron_runtime_* gauges (0 disables)")
		hedgeQ       = fs.Float64("hedge-quantile", 0, "arm a hedged second attempt once a request runs past this multiple of the bias-corrected predicted latency (0 = hedging off)")
		hedgeMax     = fs.Int("hedge-max-inflight", 0, "max concurrent hedge attempts across all workflows (0 = default 64)")

		// Cache policy/size knobs. Defaults were picked by benchmark (make
		// cache-bench, BENCH_pr8.json): LRU for predict and profiler (small
		// strongly re-referenced working sets), 2Q for the negative cache
		// (junk-name floods must not evict repeat-probed names).
		predictPol  = fs.String("predict-cache", "lru", "prediction cache policy: lru, 2q or lfu")
		predictSize = fs.Int("predict-cache-size", 0, "prediction cache capacity in entries (0 = default 32768)")
		profilePol  = fs.String("profile-cache", "lru", "profiler memo policy: lru, 2q or lfu")
		profileSize = fs.Int("profile-cache-size", 0, "profiler memo capacity in entries (0 = default 4096)")
		negPol      = fs.String("neg-cache", "2q", "negative workflow-lookup cache policy: lru, 2q or lfu")
		negSize     = fs.Int("neg-cache-size", 0, "negative cache capacity in entries (0 = default 1024)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	// Boot-time cache configuration, before any planning or traffic: the
	// Configure* swaps are not synchronized with in-flight lookups.
	pp, err := parallel.ParsePolicy(*predictPol)
	if err != nil {
		return fmt.Errorf("-predict-cache: %w", err)
	}
	predict.ConfigureExecCache(pp, *predictSize)
	fp, err := parallel.ParsePolicy(*profilePol)
	if err != nil {
		return fmt.Errorf("-profile-cache: %w", err)
	}
	profiler.ConfigureProfileCache(fp, *profileSize)
	np, err := parallel.ParsePolicy(*negPol)
	if err != nil {
		return fmt.Errorf("-neg-cache: %w", err)
	}

	// The daemon serves the process-wide default registry so /metrics
	// includes the process-wide caches (chiron_predict_cache_*,
	// chiron_profile_cache_*) and worker-pool gauges next to the serving
	// counters, not just what serve registers itself.
	reg := obs.Default
	build := obs.RegisterBuildInfo(reg)
	fl := flight.New(flight.Options{
		RingSize:   *flightRing,
		SampleRate: *flightSample,
		SLOTarget:  *sloTarget,
		Reg:        reg,
	})
	app := serve.New(serve.Options{
		Scale:          *scale,
		SLO:            *slo,
		RequestTimeout: *timeout,
		MaxConcurrency: *maxConc,
		MaxQueue:       *maxQueue,
		KeepAlive:      *keepAlive,
		Cooldown:       *cooldown,
		MinImprovement: *minImp,
		RollbackGuard:  *rbGuard,
		PlanHistory:    *history,
		NegCachePolicy: np,
		NegCacheCap:    *negSize,
		Reg:            reg,
		Flight:         fl,

		HedgeQuantile:    *hedgeQ,
		HedgeMaxInflight: *hedgeMax,
	})
	fmt.Fprintf(stdout, "chirond build: version=%s go=%s\n", build.Version, build.GoVersion)

	if *runtimeInt > 0 {
		bridge := obs.NewRuntimeBridge(reg)
		bridge.Start(*runtimeInt)
		defer bridge.Stop()
	}

	var preloaded []string
	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := app.RegisterBuiltin(name); err != nil {
				return err
			}
			preloaded = append(preloaded, name)
			if *planBoot {
				info, err := app.PlanWorkflow(name, *slo)
				if err != nil {
					return err
				}
				fmt.Fprintf(stdout, "chirond: planned %s v%d predicted=%v slo=%v wraps=%d\n",
					name, info.Version, info.Predicted, info.SLO, info.Plan.NumWraps())
			}
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: app.Handler()}
	fmt.Fprintf(stdout, "chirond listening on http://%s\n", ln.Addr())

	// Binary UDP ingress: same app, so UDP invocations share the HTTP
	// plane's admission queues, warm pools and metrics registry.
	var usrv *udp.Server
	if *udpAddr != "" {
		usrv, err = udp.New(app, udp.Options{Addr: *udpAddr, Reg: app.Registry()})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "chirond udp listening on %s\n", usrv.Addr())
	}
	closeUDP := func() {
		if usrv != nil {
			_ = usrv.Close() // stops ingress, drains in-flight UDP invokes
		}
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	if *selfbench > 0 {
		if len(preloaded) == 0 {
			return fmt.Errorf("-selfbench needs -preload (and -plan)")
		}
		url := fmt.Sprintf("http://%s/workflows/%s/invoke", ln.Addr(), preloaded[0])
		stats, err := loadgen.DriveHTTP(context.Background(), url, loadgen.DriveOptions{
			Requests:    *selfbench,
			Concurrency: *benchConc,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "chirond selfbench: sent=%d ok=%d rejected=%d failed=%d mean=%v p50=%v p95=%v p99=%v throughput=%.1f req/s\n",
			stats.Sent, stats.OK, stats.Rejected, stats.Failed,
			stats.Mean, stats.P50, stats.P95, stats.P99, stats.Throughput)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		closeUDP()
		_ = srv.Shutdown(shutdownCtx)
		return app.Shutdown(shutdownCtx)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(stdout, "chirond: %v, draining (max %v)\n", s, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		closeUDP()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := app.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		fmt.Fprintln(stdout, "chirond: drained cleanly")
		return nil
	}
}
