// Command soak drives a running chirond's binary UDP ingress with a
// closed-loop load for a fixed duration and verifies nothing was
// dropped: every submitted invocation must come back as a completion,
// a rejection, or an explicit error reply. It exits non-zero when any
// completion went missing (reply loss / server drop) or when nothing
// succeeded at all, which makes it directly usable as a CI smoke:
//
//	chirond -addr 127.0.0.1:0 -udp 127.0.0.1:9053 -preload SocialNetwork -plan -scale 0.02 &
//	soak -addr 127.0.0.1:9053 -workflow SocialNetwork -duration 5s -conc 16
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"chiron/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
}

func run(argv []string, stdout *os.File) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9053", "chirond UDP ingress address")
		workflow = fs.String("workflow", "SocialNetwork", "workflow to invoke")
		duration = fs.Duration("duration", 5*time.Second, "how long to drive")
		conc     = fs.Int("conc", 8, "closed-loop concurrency (one socket+token per worker)")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-invocation reply timeout")
		async    = fs.Bool("async", false, "submit detached invocations and await completions")
		failMax  = fs.Int("max-failed", 0, "tolerated dropped/failed invocations before exiting non-zero")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	stats, err := loadgen.DriveUDP(ctx, *addr, *workflow, loadgen.DriveOptions{
		Requests:    1 << 30, // duration-bounded: ctx expiry stops the loop
		Concurrency: *conc,
		Timeout:     *timeout,
		Async:       *async,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "soak: sent=%d ok=%d rejected=%d failed=%d mean=%v p50=%v p95=%v p99=%v throughput=%.1f inv/s elapsed=%v\n",
		stats.Sent, stats.OK, stats.Rejected, stats.Failed,
		stats.Mean, stats.P50, stats.P95, stats.P99, stats.Throughput, stats.Elapsed.Round(time.Millisecond))

	if stats.OK == 0 {
		return fmt.Errorf("no invocation completed")
	}
	if stats.Failed > *failMax {
		return fmt.Errorf("%d invocations dropped or failed (max %d)", stats.Failed, *failMax)
	}
	return nil
}
