// Command chiron-bench regenerates the paper's evaluation: every figure
// and table of "Rethinking Deployment for Serverless Functions" as an
// aligned text table, with the paper's reported values attached as notes.
//
// Usage:
//
//	chiron-bench               # run everything, print to stdout
//	chiron-bench -exp fig13    # one experiment
//	chiron-bench -quick        # trimmed sweeps (CI-sized)
//	chiron-bench -parallel 1   # sequential run (identical output)
//	chiron-bench -out results  # additionally write one .txt per experiment
//	chiron-bench -list         # list experiment IDs
//	chiron-bench -trace d      # write a Chrome trace of one FINRA-100 request to d/
//	chiron-bench -metrics      # dump the metrics registry after the run
//
// Experiments fan out across a worker pool (-parallel, default NumCPU);
// every experiment derives its tables from fixed seeds, so the output is
// byte-identical at any worker count — only the wall-clock changes. Both
// -out and -trace directories receive a run-manifest.json recording the
// run's provenance (seed, constants fingerprint, flags, go version).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"chiron/internal/engine"
	"chiron/internal/experiments"
	"chiron/internal/obs"
	"chiron/internal/parallel"
	"chiron/internal/platform"
	"chiron/internal/predict"
	"chiron/internal/profiler"
	"chiron/internal/sim"
	"chiron/internal/workloads"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID (fig3..fig19, table1, abl-*), 'all' (paper), or 'ablations'")
		quick   = flag.Bool("quick", false, "trim sweeps for a fast pass")
		out     = flag.String("out", "", "directory to also write per-experiment .txt files")
		seed    = flag.Int64("seed", 1, "jitter seed")
		reqs    = flag.Int("requests", 0, "samples for distributional metrics (0 = default)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		workers = flag.Int("parallel", runtime.NumCPU(), "worker-pool width (1 = sequential; output is identical either way)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		trace   = flag.String("trace", "", "directory for a Chrome trace (trace.json), text timeline and manifest of one FINRA-100 Chiron request")
		metrics = flag.Bool("metrics", false, "dump the obs metrics registry (Prometheus text) after the run")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.Order {
			fmt.Println(id)
		}
		for _, id := range experiments.Ablations {
			fmt.Println(id)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	parallel.SetWorkers(*workers)

	// Baselines for the exit-time throughput report: simulator events and
	// heap allocations consumed by this run only.
	runStart := time.Now()
	eventsStart := sim.TotalFired()
	var msStart runtime.MemStats
	runtime.ReadMemStats(&msStart)

	cfg := experiments.Default()
	cfg.Quick = *quick
	cfg.Seed = *seed
	if *reqs > 0 {
		cfg.Requests = *reqs
	}

	// Run provenance: every -out and -trace directory gets this manifest.
	setFlags := map[string]string{}
	expSet := false
	flag.Visit(func(f *flag.Flag) {
		setFlags[f.Name] = f.Value.String()
		if f.Name == "exp" {
			expSet = true
		}
	})
	build := obs.ReadBuild()
	man := obs.Manifest{
		Tool:        "chiron-bench",
		GoVersion:   runtime.Version(),
		Version:     build.Version,
		VCSRevision: build.Revision,
		Seed:        cfg.Seed,
		Workers:     parallel.Workers(),
		Quick:       cfg.Quick,
		Requests:    cfg.Requests,
		ConstantsFP: obs.Fingerprint(cfg.Const),
		Flags:       setFlags,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
	}

	if *trace != "" {
		if err := writeTrace(*trace, cfg, man); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: wrote trace.json, timeline.txt and %s to %s\n", obs.ManifestName, *trace)
		if !expSet {
			// A bare -trace run is about the trace, not the tables.
			printRunStats(*metrics, runStart, eventsStart, &msStart)
			return
		}
	}

	ids := experiments.Order
	switch *exp {
	case "all":
	case "ablations":
		ids = experiments.Ablations
	default:
		ids = []string{*exp}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	start := time.Now()
	// Fan the experiment drivers themselves across the pool; each one
	// measures its own elapsed wall-clock. Results come back in paper
	// order, so stdout reads the same as a sequential run.
	type outcome struct {
		text    string
		elapsed time.Duration
	}
	results, err := parallel.Map(len(ids), func(i int) (outcome, error) {
		t0 := time.Now()
		tab, err := experiments.Run(ids[i], cfg)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", ids[i], err)
		}
		return outcome{text: tab.String(), elapsed: time.Since(t0)}, nil
	})
	if err != nil {
		fatal(err)
	}
	for i, res := range results {
		fmt.Print(res.text)
		fmt.Printf("(%s regenerated in %v)\n\n", ids[i], res.elapsed.Round(time.Millisecond))
		if *out != "" {
			path := filepath.Join(*out, ids[i]+".txt")
			if err := os.WriteFile(path, []byte(res.text), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if *out != "" {
		m := man
		m.Experiments = ids
		for _, e := range workloads.Suite() {
			m.Workloads = append(m.Workloads, e.Name)
		}
		if err := m.WriteFile(*out); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("done: %d experiment(s) in %v\n", len(ids), time.Since(start).Round(time.Millisecond))
	printRunStats(*metrics, runStart, eventsStart, &msStart)

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// printRunStats reports the shared prediction cache and worker-pool
// counters, the simulation-core throughput (events/sec and heap
// allocations per event — the zero-allocation hot path's scoreboard),
// and optionally the whole metrics registry.
func printRunStats(dumpMetrics bool, runStart time.Time, eventsStart uint64, msStart *runtime.MemStats) {
	cs := predict.ExecCacheStats()
	ps := parallel.Stats()
	hitRate := 0.0
	if total := cs.Hits + cs.Misses; total > 0 {
		hitRate = float64(cs.Hits) / float64(total) * 100
	}
	fmt.Printf("prediction cache: %d hits / %d misses / %d evictions (%.1f%% hit rate)\n",
		cs.Hits, cs.Misses, cs.Evictions, hitRate)
	fmt.Printf("worker pool: %d spawned / %d inline tasks, mean wait %v, mean run %v\n",
		ps.Spawned, ps.Inline, ps.MeanWait.Round(time.Microsecond), ps.MeanRun.Round(time.Microsecond))
	var msEnd runtime.MemStats
	runtime.ReadMemStats(&msEnd)
	events := sim.TotalFired() - eventsStart
	allocs := msEnd.Mallocs - msStart.Mallocs
	elapsed := time.Since(runStart).Seconds()
	if events > 0 && elapsed > 0 {
		fmt.Printf("simulation core: %d events fired (%.2fM events/sec), %.2f allocs/event\n",
			events, float64(events)/elapsed/1e6, float64(allocs)/float64(events))
	}
	if dumpMetrics {
		fmt.Println()
		if err := obs.Default.WriteProm(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// writeTrace runs one FINRA-100 request on the Chiron deployment with
// tracing on and writes the Chrome trace, a text timeline and the run
// manifest into dir. The trace is in virtual time, so its bytes depend
// only on (workflow, plan, seed) — never on -parallel.
func writeTrace(dir string, cfg experiments.Config, man obs.Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	w := workloads.FINRA(100)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		return err
	}
	sys := platform.Chiron(cfg.Const)
	plan, err := sys.Plan(w, set, 0)
	if err != nil {
		return err
	}
	env := sys.Env()
	env.Seed = cfg.Seed
	tr := obs.NewTrace()
	env.Rec = tr
	if _, err := engine.Run(w, plan, env); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "trace.json"))
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "timeline.txt"), []byte(tr.Timeline(112)), 0o644); err != nil {
		return err
	}
	man.Workloads = []string{w.Name}
	return man.WriteFile(dir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chiron-bench:", err)
	os.Exit(1)
}
