// Command chiron-bench regenerates the paper's evaluation: every figure
// and table of "Rethinking Deployment for Serverless Functions" as an
// aligned text table, with the paper's reported values attached as notes.
//
// Usage:
//
//	chiron-bench               # run everything, print to stdout
//	chiron-bench -exp fig13    # one experiment
//	chiron-bench -quick        # trimmed sweeps (CI-sized)
//	chiron-bench -out results  # additionally write one .txt per experiment
//	chiron-bench -list         # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"chiron/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment ID (fig3..fig19, table1, abl-*), 'all' (paper), or 'ablations'")
		quick = flag.Bool("quick", false, "trim sweeps for a fast pass")
		out   = flag.String("out", "", "directory to also write per-experiment .txt files")
		seed  = flag.Int64("seed", 1, "jitter seed")
		reqs  = flag.Int("requests", 0, "samples for distributional metrics (0 = default)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.Order {
			fmt.Println(id)
		}
		for _, id := range experiments.Ablations {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Default()
	cfg.Quick = *quick
	cfg.Seed = *seed
	if *reqs > 0 {
		cfg.Requests = *reqs
	}

	ids := experiments.Order
	switch *exp {
	case "all":
	case "ablations":
		ids = experiments.Ablations
	default:
		ids = []string{*exp}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		text := tab.String()
		fmt.Print(text)
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
		if *out != "" {
			path := filepath.Join(*out, id+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("done: %d experiment(s) in %v\n", len(ids), time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chiron-bench:", err)
	os.Exit(1)
}
