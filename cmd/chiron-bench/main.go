// Command chiron-bench regenerates the paper's evaluation: every figure
// and table of "Rethinking Deployment for Serverless Functions" as an
// aligned text table, with the paper's reported values attached as notes.
//
// Usage:
//
//	chiron-bench               # run everything, print to stdout
//	chiron-bench -exp fig13    # one experiment
//	chiron-bench -quick        # trimmed sweeps (CI-sized)
//	chiron-bench -parallel 1   # sequential run (identical output)
//	chiron-bench -out results  # additionally write one .txt per experiment
//	chiron-bench -list         # list experiment IDs
//
// Experiments fan out across a worker pool (-parallel, default NumCPU);
// every experiment derives its tables from fixed seeds, so the output is
// byte-identical at any worker count — only the wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"chiron/internal/experiments"
	"chiron/internal/parallel"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID (fig3..fig19, table1, abl-*), 'all' (paper), or 'ablations'")
		quick   = flag.Bool("quick", false, "trim sweeps for a fast pass")
		out     = flag.String("out", "", "directory to also write per-experiment .txt files")
		seed    = flag.Int64("seed", 1, "jitter seed")
		reqs    = flag.Int("requests", 0, "samples for distributional metrics (0 = default)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		workers = flag.Int("parallel", runtime.NumCPU(), "worker-pool width (1 = sequential; output is identical either way)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.Order {
			fmt.Println(id)
		}
		for _, id := range experiments.Ablations {
			fmt.Println(id)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	parallel.SetWorkers(*workers)

	cfg := experiments.Default()
	cfg.Quick = *quick
	cfg.Seed = *seed
	if *reqs > 0 {
		cfg.Requests = *reqs
	}

	ids := experiments.Order
	switch *exp {
	case "all":
	case "ablations":
		ids = experiments.Ablations
	default:
		ids = []string{*exp}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	start := time.Now()
	// Fan the experiment drivers themselves across the pool; each one
	// measures its own elapsed wall-clock. Results come back in paper
	// order, so stdout reads the same as a sequential run.
	type outcome struct {
		text    string
		elapsed time.Duration
	}
	results, err := parallel.Map(len(ids), func(i int) (outcome, error) {
		t0 := time.Now()
		tab, err := experiments.Run(ids[i], cfg)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", ids[i], err)
		}
		return outcome{text: tab.String(), elapsed: time.Since(t0)}, nil
	})
	if err != nil {
		fatal(err)
	}
	for i, res := range results {
		fmt.Print(res.text)
		fmt.Printf("(%s regenerated in %v)\n\n", ids[i], res.elapsed.Round(time.Millisecond))
		if *out != "" {
			path := filepath.Join(*out, ids[i]+".txt")
			if err := os.WriteFile(path, []byte(res.text), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("done: %d experiment(s) in %v\n", len(ids), time.Since(start).Round(time.Millisecond))

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chiron-bench:", err)
	os.Exit(1)
}
