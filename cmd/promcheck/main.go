// Command promcheck strictly validates a Prometheus classic text-format
// exposition: line syntax, metric/label names, label-value escape
// sequences, and histogram invariants (cumulative-monotone buckets, a
// le="+Inf" bucket equal to _count, a _sum sample). CI's obs-smoke job
// points it at a live chirond /metrics scrape.
//
//	promcheck < metrics.txt
//	promcheck -url http://127.0.0.1:8080/metrics
//	promcheck -url ... -require chiron_slo_burn_alerts_total -min 1
//
// Exit status: 0 valid (and every -require constraint held), 1 not.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"chiron/internal/obs"
)

func main() {
	url := flag.String("url", "", "scrape this URL instead of stdin")
	require := flag.String("require", "", "comma-separated metric families that must be present")
	min := flag.Float64("min", 0, "with -require: every required family must have a sample with value >= min")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *url != "" {
		resp, err := http.Get(*url)
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("GET %s: HTTP %d", *url, resp.StatusCode))
		}
		in = resp.Body
	}

	fams, err := obs.CheckProm(in)
	if err != nil {
		fatal(err)
	}

	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			f, ok := fams[name]
			if !ok {
				fatal(fmt.Errorf("required family %s missing", name))
			}
			best := 0.0
			for _, s := range f.Samples {
				if s.Value > best {
					best = s.Value
				}
			}
			if len(f.Samples) == 0 || best < *min {
				fatal(fmt.Errorf("required family %s: max sample %g < min %g", name, best, *min))
			}
		}
	}

	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	fmt.Printf("promcheck: OK — %d families, %d samples\n", len(fams), samples)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promcheck:", err)
	os.Exit(1)
}
