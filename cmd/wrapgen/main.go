// Command wrapgen is the Generator (Section 5) as a standalone tool: it
// plans a workflow with PGP and emits each wrap's orchestrator handler
// source plus the deployment manifest, optionally writing one file per
// wrap to a directory (the shape OpenFaaS function templates expect).
//
// Usage:
//
//	wrapgen -workload FINRA-50 -slo 300ms
//	wrapgen -workload SocialNetwork -slo 80ms -style pool -out build/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"chiron/internal/dag"
	"chiron/internal/deploy"
	"chiron/internal/model"
	"chiron/internal/pgp"
	"chiron/internal/profiler"
	"chiron/internal/render"
	"chiron/internal/workloads"
	"chiron/internal/wrap"
)

func main() {
	var (
		workload = flag.String("workload", "", "built-in workload name")
		slo      = flag.Duration("slo", 0, "latency SLO (0 = latency-optimal)")
		style    = flag.String("style", "hybrid", "execution style: hybrid | proconly | pool")
		iso      = flag.String("iso", "none", "thread isolation: none | mpk")
		out      = flag.String("out", "", "directory to write wrap-<n>/handler.py files")
	)
	flag.Parse()
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "wrapgen: -workload is required (try: chiron workloads)")
		os.Exit(2)
	}
	var w = lookup(*workload)
	if w == nil {
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}

	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	opt := pgp.Options{Const: model.Default(), SLO: *slo}
	switch *style {
	case "hybrid":
	case "proconly":
		opt.Style = pgp.ProcOnly
	case "pool":
		opt.Style = pgp.PoolStyle
	default:
		fatal(fmt.Errorf("unknown style %q", *style))
	}
	switch *iso {
	case "none":
	case "mpk":
		opt.Iso = wrap.IsoMPK
	default:
		fatal(fmt.Errorf("unknown isolation %q", *iso))
	}

	res, err := pgp.Plan(w, set, opt)
	if err != nil {
		fatal(err)
	}
	manifest, err := deploy.Manifest(w, res.Plan)
	if err != nil {
		fatal(err)
	}
	fmt.Print(manifest)
	fmt.Printf("predicted latency: %s (meets SLO: %v)\n\n", render.Ms(res.Predicted), res.MeetsSLO)

	orcs, err := deploy.Generate(w, res.Plan)
	if err != nil {
		fatal(err)
	}
	for _, o := range orcs {
		if *out == "" {
			fmt.Printf("# ===== wrap %d handler.py =====\n%s\n", o.Sandbox, o.Source)
			continue
		}
		dir := filepath.Join(*out, fmt.Sprintf("wrap-%d", o.Sandbox))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(dir, "handler.py")
		if err := os.WriteFile(path, []byte(o.Source), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

func lookup(name string) *dag.Workflow {
	for _, e := range workloads.Suite() {
		if e.Name == name {
			return e.Workflow
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wrapgen:", err)
	os.Exit(1)
}
