// Command chiron is the CLI for the Chiron reproduction; the
// implementation lives in internal/cli so it is unit tested.
package main

import (
	"os"

	"chiron/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
