// Package chiron is a from-scratch Go reproduction of "Rethinking
// Deployment for Serverless Functions: A Performance-first Perspective"
// (SC '23): the Chiron deployment manager, its wrap abstraction, the PGP
// partitioning scheduler, the white-box latency Predictor, and every
// substrate its evaluation depends on (GIL-constrained runtimes, process
// forking, sandboxes, object stores, platform schedulers), all on a
// deterministic virtual-time engine.
//
// The quick path from a workflow to a deployment:
//
//	w := chiron.FINRA(50)                              // or build your own Workflow
//	dep, err := chiron.Deploy(w, 300*time.Millisecond) // profile + PGP + plan
//	res, err := dep.Invoke(1)                          // execute one request
//	fmt.Println(res.E2E, dep.Plan.NumWraps(), dep.Plan.TotalCPUs())
//
// Baseline platforms (ASF, OpenFaaS, SAND, Faastlane and variants) are
// available through System, and every figure/table of the paper can be
// regenerated with RunExperiment. See DESIGN.md for the architecture and
// EXPERIMENTS.md for paper-vs-measured results.
package chiron

import (
	"time"

	"chiron/internal/adapt"
	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/dynamic"
	"chiron/internal/engine"
	"chiron/internal/experiments"
	"chiron/internal/live"
	"chiron/internal/metrics"
	"chiron/internal/model"
	"chiron/internal/node"
	"chiron/internal/pgp"
	"chiron/internal/platform"
	"chiron/internal/predict"
	"chiron/internal/profiler"
	"chiron/internal/render"
	"chiron/internal/workloads"
	"chiron/internal/wrap"
)

// ---- Workflow modelling ----

// Function describes one serverless function: its runtime, its solo-run
// execution trace (CPU and blocking segments), memory and data flow.
type Function = behavior.Spec

// Segment is one contiguous CPU or blocking span of a Function.
type Segment = behavior.Segment

// SegmentKind classifies a Segment.
type SegmentKind = behavior.SegmentKind

// Segment kinds.
const (
	CPU    = behavior.CPU
	Sleep  = behavior.Sleep
	DiskIO = behavior.DiskIO
	NetIO  = behavior.NetIO
)

// Runtime identifies a function's language runtime.
type Runtime = behavior.Runtime

// Supported runtimes. Python and NodeJS threads contend on a global
// interpreter lock; Java threads are truly parallel.
const (
	Python = behavior.Python
	NodeJS = behavior.NodeJS
	Java   = behavior.Java
)

// Workflow is a staged serverless application: a sequence of stages, each
// holding one or more parallel functions.
type Workflow = dag.Workflow

// Stage is one rank of a workflow: functions that may run in parallel.
type Stage = dag.Stage

// Graph is the DAG submission form of a workflow; Level converts it to
// stages.
type Graph = dag.Graph

// GraphNode is one vertex of a Graph.
type GraphNode = dag.Node

// NewWorkflow builds a validated workflow from explicit stages.
func NewWorkflow(name string, slo time.Duration, stages ...[]*Function) (*Workflow, error) {
	return dag.FromStages(name, slo, stages...)
}

// ---- Benchmarks ----

// FINRA returns the trade-validation benchmark with par parallel
// validators.
func FINRA(par int) *Workflow { return workloads.FINRA(par) }

// SocialNetwork returns the 4-stage, 10-function web-service benchmark.
func SocialNetwork() *Workflow { return workloads.SocialNetwork() }

// MovieReviewing returns the 4-stage, 9-function web-service benchmark.
func MovieReviewing() *Workflow { return workloads.MovieReviewing() }

// SLApp returns the 2-stage mixed CPU/disk/network benchmark.
func SLApp() *Workflow { return workloads.SLApp() }

// SLAppV returns the 5-stage SLApp variant.
func SLAppV() *Workflow { return workloads.SLAppV() }

// InJava clones a workflow onto the GIL-free Java runtime.
func InJava(w *Workflow) *Workflow { return workloads.InJava(w) }

// ---- Calibration ----

// Constants is the substrate calibration (timings, memory, pricing).
type Constants = model.Constants

// DefaultConstants returns the calibration derived from the paper's
// measurements.
func DefaultConstants() Constants { return model.Default() }

// ---- Profiling and prediction ----

// Profiles is a profiled workflow: the Predictor's and PGP's only view of
// function behaviour.
type Profiles = profiler.Set

// Profile runs the Chiron Profiler on every function of w: an untraced
// solo run plus a strace-style traced run whose block periods are
// extracted and rescaled (Section 3.2).
func Profile(w *Workflow) (Profiles, error) {
	return profiler.ProfileWorkflow(w, profiler.DefaultOptions())
}

// Predictor is the white-box latency model: Eq. (1)-(4) plus Algorithm 1's
// GIL simulation.
type Predictor = predict.Predictor

// NewPredictor builds a Predictor over profiled functions.
func NewPredictor(c Constants, p Profiles) *Predictor { return predict.New(c, p) }

// ---- Deployment plans ----

// DeploymentPlan maps every function to a (sandbox, process) location —
// the wrap abstraction's concrete form.
type DeploymentPlan = wrap.Plan

// Placement is one function's location within a plan.
type Placement = wrap.Loc

// SandboxConfig configures one wrap's sandbox.
type SandboxConfig = wrap.SandboxCfg

// PGPOptions parameterize the PGP scheduler.
type PGPOptions = pgp.Options

// PGPResult carries PGP's chosen plan, its predicted latency and the
// exploration trace.
type PGPResult = pgp.Result

// PGP styles.
const (
	Hybrid    = pgp.Hybrid
	ProcOnly  = pgp.ProcOnly
	PoolStyle = pgp.PoolStyle
)

// PlanPGP runs the PGP scheduler (Algorithm 2) directly.
func PlanPGP(w *Workflow, p Profiles, opt PGPOptions) (*PGPResult, error) {
	return pgp.Plan(w, p, opt)
}

// ---- Platforms and execution ----

// System is one deployable platform: ASF, OpenFaaS, SAND, Faastlane (and
// -T/+/-M/-P variants), Chiron (and -M/-P).
type System = platform.System

// Platform constructors.
var (
	ASF           = platform.ASF
	OpenFaaS      = platform.OpenFaaS
	SAND          = platform.SAND
	Faastlane     = platform.Faastlane
	FaastlaneT    = platform.FaastlaneT
	FaastlanePlus = platform.FaastlanePlus
	FaastlaneM    = platform.FaastlaneM
	FaastlaneP    = platform.FaastlaneP
	Chiron        = platform.Chiron
	ChironM       = platform.ChironM
	ChironP       = platform.ChironP
	AllSystems    = platform.All
	LookupSystem  = platform.Lookup
)

// Env is the execution environment (dispatch model, data path, fidelity).
type Env = engine.Env

// Result is one executed request's ground truth.
type Result = engine.Result

// Execute runs one request of w deployed per plan under env.
func Execute(w *Workflow, plan *DeploymentPlan, env Env) (*Result, error) {
	return engine.Run(w, plan, env)
}

// ExecuteMany runs n seeded requests and returns their latencies.
func ExecuteMany(w *Workflow, plan *DeploymentPlan, env Env, n int) ([]time.Duration, error) {
	return engine.RunMany(w, plan, env, n)
}

// ---- High-level convenience ----

// Deployment is a planned workflow ready to serve requests.
type Deployment struct {
	// Workflow is the deployed application.
	Workflow *Workflow
	// System is the platform that planned it.
	System *System
	// Plan is the concrete wrap deployment.
	Plan *DeploymentPlan
	// Profiles are the function profiles used for planning (nil for
	// profile-free baselines).
	Profiles Profiles
}

// Deploy profiles w and plans it with Chiron's PGP under the given SLO
// (zero = minimize latency), on the default calibration.
func Deploy(w *Workflow, slo time.Duration) (*Deployment, error) {
	return DeployOn(Chiron(DefaultConstants()), w, slo)
}

// DeployOn plans w on an arbitrary platform. Profiling is performed
// automatically for platforms that need it.
func DeployOn(sys *System, w *Workflow, slo time.Duration) (*Deployment, error) {
	set, err := Profile(w)
	if err != nil {
		return nil, err
	}
	plan, err := sys.Plan(w, set, slo)
	if err != nil {
		return nil, err
	}
	return &Deployment{Workflow: w, System: sys, Plan: plan, Profiles: set}, nil
}

// Invoke executes one request with the given jitter seed.
func (d *Deployment) Invoke(seed int64) (*Result, error) {
	env := d.System.Env()
	env.Seed = seed
	return engine.Run(d.Workflow, d.Plan, env)
}

// InvokeMany executes n seeded requests and returns their latencies.
func (d *Deployment) InvokeMany(seed int64, n int) ([]time.Duration, error) {
	env := d.System.Env()
	env.Seed = seed
	return engine.RunMany(d.Workflow, d.Plan, env, n)
}

// Resources reports the deployment's footprint: total CPUs, resident
// memory, sandbox count, and how many whole instances fit on one Table 2
// worker node.
func (d *Deployment) Resources() (cpus int, memMB float64, sandboxes, instancesPerNode int, err error) {
	c := DefaultConstants()
	ledgers, err := d.Plan.Ledgers(d.Workflow)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for _, sb := range ledgers {
		memMB += sb.MemoryMB(c)
	}
	demand := node.DemandOf(c, ledgers)
	n := node.FromConstants(c).MaxInstances(demand)
	return d.Plan.TotalCPUs(), memMB, d.Plan.NumWraps(), n, nil
}

// PredictLatency estimates the deployment's end-to-end latency with the
// white-box Predictor (only for deployments planned with profiles).
func (d *Deployment) PredictLatency() (time.Duration, error) {
	p := predict.New(DefaultConstants(), d.Profiles)
	return p.Workflow(d.Workflow, d.Plan)
}

// ---- Metrics and experiments ----

// Mean, Percentile and ViolationRate expose the latency statistics used by
// the evaluation.
var (
	Mean          = metrics.Mean
	Percentile    = metrics.Percentile
	ViolationRate = metrics.ViolationRate
)

// ExperimentTable is a reproduced figure or table.
type ExperimentTable = render.Table

// ExperimentConfig parameterizes experiment reproduction.
type ExperimentConfig = experiments.Config

// Experiments lists the reproducible experiment IDs in paper order.
func Experiments() []string { return append([]string(nil), experiments.Order...) }

// Ablations lists the extra design-choice ablation experiment IDs.
func Ablations() []string { return append([]string(nil), experiments.Ablations...) }

// RunExperiment regenerates one of the paper's tables/figures ("fig13",
// "table1", ...).
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentTable, error) {
	return experiments.Run(id, cfg)
}

// DefaultExperimentConfig returns the standard experiment configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// ---- Live execution ----

// LiveOptions configure a wall-clock run of a plan with real goroutines:
// a token-passing GIL, serialized forks, pool workers, and optional real
// Go code bound to function names.
type LiveOptions = live.Options

// LiveFn is real Go code bound to a function name for live execution.
type LiveFn = live.Fn

// LiveCtx is the context handed to bound functions (store access, spec).
type LiveCtx = live.Ctx

// LiveResult is one live request's measured outcome.
type LiveResult = live.Result

// RunLive executes one request of w under plan on the wall clock — the
// in-process equivalent of deploying the generated orchestrators. See
// package internal/live for semantics; results are non-deterministic
// (real scheduling) by design.
func RunLive(w *Workflow, plan *DeploymentPlan, opt LiveOptions) (*LiveResult, error) {
	if opt.Const.NodeCores == 0 {
		opt.Const = DefaultConstants()
	}
	return live.Run(w, plan, opt)
}

// ---- Adaptive re-planning (Section 3.4's periodic re-run) ----

// AdaptiveController serves a workflow under a PGP plan and re-profiles +
// re-plans automatically when observed latencies drift from prediction.
type AdaptiveController = adapt.Controller

// AdaptiveOptions configure the controller's SLO, window and triggers.
type AdaptiveOptions = adapt.Options

// WorkflowSource returns the workflow's current behaviour; the controller
// calls it on every (re-)plan.
type WorkflowSource = adapt.Source

// NewAdaptiveController profiles and plans the source's current behaviour
// and returns the self-adapting deployment manager.
func NewAdaptiveController(src WorkflowSource, opt AdaptiveOptions) (*AdaptiveController, error) {
	if opt.Const.NodeCores == 0 {
		opt.Const = DefaultConstants()
	}
	return adapt.New(src, opt)
}

// ---- Dynamic DAGs (Discussion/future-work extension) ----

// DynamicWorkflow is a workflow whose tail is chosen at runtime by a
// switch (e.g. Video-FFmpeg's upload deciding between split and
// simple_process).
type DynamicWorkflow = dynamic.Workflow

// DynamicBranch is one continuation a switch can select.
type DynamicBranch = dynamic.Branch

// DynamicDeployment is the pre-planned variant set for a dynamic
// workflow.
type DynamicDeployment = dynamic.Deployment

// PlanDynamic profiles the union of all branches and pre-plans every
// (head + branch) variant with PGP under the SLO.
func PlanDynamic(w *DynamicWorkflow, slo time.Duration) (*DynamicDeployment, error) {
	return dynamic.Plan(w, DefaultConstants(), slo)
}
