// Live execution: run a Chiron-planned deployment on the wall clock with
// REAL Go code bound to the workflow's functions — goroutines as threads,
// a token-passing GIL, serialized forks, and a shared in-memory store for
// intermediate data. Also demonstrates the dynamic-DAG extension (the
// Discussion section's Video-FFmpeg switch).
//
//	go run ./examples/liveserve
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"strings"
	"time"

	"chiron"
)

func main() {
	liveWordCount()
	fmt.Println()
	dynamicVideo()
}

// liveWordCount builds a 3-stage map/reduce-ish pipeline, plans it with
// PGP and executes it live with real bound functions.
func liveWordCount() {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog ", 2000)

	split := &chiron.Function{
		Name: "split", Runtime: chiron.Python,
		Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: 2 * time.Millisecond}},
		MemMB:    4,
	}
	var counters []*chiron.Function
	for i := 0; i < 4; i++ {
		counters = append(counters, &chiron.Function{
			Name: fmt.Sprintf("count-%d", i), Runtime: chiron.Python,
			Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: 5 * time.Millisecond}},
			MemMB:    2,
		})
	}
	merge := &chiron.Function{
		Name: "merge", Runtime: chiron.Python,
		Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: 2 * time.Millisecond}},
		MemMB:    2,
	}
	w, err := chiron.NewWorkflow("wordcount", 0,
		[]*chiron.Function{split}, counters, []*chiron.Function{merge})
	if err != nil {
		log.Fatal(err)
	}

	dep, err := chiron.Deploy(w, 60*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wordcount planned: %d wrap(s), %d CPU(s)\n", dep.Plan.NumWraps(), dep.Plan.TotalCPUs())

	bindings := map[string]chiron.LiveFn{
		"split": func(c *chiron.LiveCtx) error {
			words := strings.Fields(text)
			per := (len(words) + 3) / 4
			for i := 0; i < 4; i++ {
				lo, hi := i*per, min((i+1)*per, len(words))
				if lo > hi {
					lo = hi
				}
				c.Store.Put(fmt.Sprintf("shard-%d", i), []byte(strings.Join(words[lo:hi], " ")))
			}
			return nil
		},
		"merge": func(c *chiron.LiveCtx) error {
			total := 0
			for i := 0; i < 4; i++ {
				v, err := c.Store.Get(fmt.Sprintf("count-%d", i))
				if err != nil {
					return err
				}
				var n int
				fmt.Sscanf(string(v), "%d", &n)
				total += n
			}
			c.Store.Put("total", []byte(fmt.Sprint(total)))
			return nil
		},
	}
	for i := 0; i < 4; i++ {
		i := i
		bindings[fmt.Sprintf("count-%d", i)] = func(c *chiron.LiveCtx) error {
			v, err := c.Store.Get(fmt.Sprintf("shard-%d", i))
			if err != nil {
				return err
			}
			// Real work: count words and hash the shard (audit trail).
			n := len(strings.Fields(string(v)))
			sum := sha256.Sum256(v)
			c.Store.Put(fmt.Sprintf("count-%d", i), []byte(fmt.Sprint(n)))
			c.Store.Put(fmt.Sprintf("digest-%d", i), []byte(hex.EncodeToString(sum[:8])))
			return nil
		}
	}

	res, err := chiron.RunLive(w, dep.Plan, chiron.LiveOptions{Bindings: bindings})
	if err != nil {
		log.Fatal(err)
	}
	total, err := res.Store.Get("total")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live run: counted %s words in %v wall time across %d functions\n",
		total, res.E2E.Round(100*time.Microsecond), len(res.Functions))
}

// dynamicVideo demonstrates the dynamic-DAG extension: a switch step whose
// branch is decided per request (the paper's Video-FFmpeg example).
func dynamicVideo() {
	fn := func(name string, cpu time.Duration) *chiron.Function {
		return &chiron.Function{
			Name: name, Runtime: chiron.Python,
			Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: cpu}},
			MemMB:    2,
		}
	}
	w := &chiron.DynamicWorkflow{
		Name: "video-ffmpeg",
		Head: []chiron.Stage{{Functions: []*chiron.Function{fn("upload", 4*time.Millisecond)}}},
		Branches: []chiron.DynamicBranch{
			{
				Name: "split-pipeline", Weight: 0.3,
				Stages: []chiron.Stage{
					{Functions: []*chiron.Function{fn("split", 3*time.Millisecond)}},
					{Functions: []*chiron.Function{
						fn("encode-1", 9*time.Millisecond), fn("encode-2", 9*time.Millisecond),
						fn("encode-3", 9*time.Millisecond), fn("encode-4", 9*time.Millisecond),
					}},
					{Functions: []*chiron.Function{fn("concat", 3*time.Millisecond)}},
				},
			},
			{
				Name: "simple-process", Weight: 0.7,
				Stages: []chiron.Stage{
					{Functions: []*chiron.Function{fn("simple_process", 12*time.Millisecond)}},
				},
			},
		},
	}
	d, err := chiron.PlanDynamic(w, 80*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video-ffmpeg: %d pre-planned variants, expected latency %v\n",
		len(d.Plans), d.ExpectedLatency().Round(100*time.Microsecond))
	env := chiron.Chiron(chiron.DefaultConstants()).Env()
	env.Fidelity = true
	byBranch, err := d.InvokeMany(env, 1, 50)
	if err != nil {
		log.Fatal(err)
	}
	for b, lats := range byBranch {
		fmt.Printf("  branch %-15s served %2d requests, mean %v\n",
			w.Branches[b].Name, len(lats), chiron.Mean(lats).Round(100*time.Microsecond))
	}
}
