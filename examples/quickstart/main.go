// Quickstart: define a workflow, let Chiron plan it, execute requests,
// and inspect what the planner decided.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"chiron"
)

func main() {
	// An image-processing pipeline: one decode stage fanning out to four
	// parallel filters, then a recombine stage. Python runtime, so
	// threads of one process contend on the GIL.
	decode := &chiron.Function{
		Name: "decode", Runtime: chiron.Python,
		Segments: []chiron.Segment{
			{Kind: chiron.CPU, Dur: 4 * time.Millisecond},
			{Kind: chiron.DiskIO, Dur: 3 * time.Millisecond, Bytes: 2 << 20},
		},
		MemMB: 8, OutputBytes: 2 << 20,
	}
	var filters []*chiron.Function
	for _, name := range []string{"blur", "sharpen", "contrast", "edges"} {
		filters = append(filters, &chiron.Function{
			Name: name, Runtime: chiron.Python,
			Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: 6 * time.Millisecond}},
			MemMB:    3, OutputBytes: 512 << 10,
		})
	}
	recombine := &chiron.Function{
		Name: "recombine", Runtime: chiron.Python,
		Segments: []chiron.Segment{
			{Kind: chiron.CPU, Dur: 5 * time.Millisecond},
			{Kind: chiron.NetIO, Dur: 4 * time.Millisecond, Bytes: 2 << 20},
		},
		MemMB: 6, OutputBytes: 2 << 20,
	}

	w, err := chiron.NewWorkflow("image-pipeline", 0,
		[]*chiron.Function{decode},
		filters,
		[]*chiron.Function{recombine},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy = Profile (solo run + strace block extraction) + PGP
	// (Algorithm 2) under a 40ms latency SLO.
	dep, err := chiron.Deploy(w, 40*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	cpus, mem, sandboxes, perNode, err := dep.Resources()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %q: %d sandbox(es), %d CPU(s), %.1f MB; %d instances fit one 40-core node\n",
		w.Name, sandboxes, cpus, mem, perNode)
	for _, fn := range w.Functions() {
		loc := dep.Plan.Loc[fn.Name]
		mode := "forked process"
		if loc.Proc == 0 {
			mode = "thread of wrap main"
		}
		fmt.Printf("  %-10s -> wrap %d, proc %d (%s)\n", fn.Name, loc.Sandbox, loc.Proc, mode)
	}

	pred, err := dep.PredictLatency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted end-to-end latency: %v (white-box Eq.1-4 + Algorithm 1)\n", pred.Round(100*time.Microsecond))

	lats, err := dep.InvokeMany(1, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured over 50 requests: mean %v  p95 %v  SLO violations %.1f%%\n",
		chiron.Mean(lats).Round(100*time.Microsecond),
		chiron.Percentile(lats, 0.95).Round(100*time.Microsecond),
		chiron.ViolationRate(lats, 40*time.Millisecond)*100)

	// Compare against a one-to-one baseline.
	base, err := chiron.DeployOn(chiron.OpenFaaS(chiron.DefaultConstants()), w, 0)
	if err != nil {
		log.Fatal(err)
	}
	bl, err := base.InvokeMany(1, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OpenFaaS one-to-one baseline: mean %v (%.1fx Chiron)\n",
		chiron.Mean(bl).Round(100*time.Microsecond),
		float64(chiron.Mean(bl))/float64(chiron.Mean(lats)))
}
