// SLO sweep: how Chiron's PGP trades CPUs for latency as the target
// tightens, on two workloads with opposite characters — the IO-heavy
// interactive SocialNetwork (threads suffice almost everywhere) and the
// CPU-heavy FINRA-25 (tight targets force true-parallel processes and
// extra wraps). This is Observation 4 made interactive.
//
//	go run ./examples/slosweep
package main

import (
	"fmt"
	"log"
	"time"

	"chiron"
)

func main() {
	sweep("SocialNetwork (IO-heavy web service)", chiron.SocialNetwork(),
		[]time.Duration{
			120 * time.Millisecond, 60 * time.Millisecond,
			35 * time.Millisecond, 25 * time.Millisecond,
		})
	fmt.Println()
	sweep("FINRA-25 (CPU-heavy validators)", chiron.FINRA(25),
		[]time.Duration{
			300 * time.Millisecond, 200 * time.Millisecond,
			150 * time.Millisecond, 120 * time.Millisecond,
			100 * time.Millisecond, 90 * time.Millisecond,
		})

	fmt.Println("\nreading the sweeps: loose SLOs let PGP serialize everything onto one")
	fmt.Println("CPU (pseudo-parallel threads of the wrap main); tightening the target")
	fmt.Println("forces forked true-parallel processes and eventually extra wraps —")
	fmt.Println("CPUs are spent exactly where the SLO demands them (Observation 4).")
}

func sweep(title string, w *chiron.Workflow, slos []time.Duration) {
	set, err := chiron.Profile(w)
	if err != nil {
		log.Fatal(err)
	}
	c := chiron.DefaultConstants()
	fmt.Printf("%s: %d stages, %d functions, max parallelism %d\n",
		title, len(w.Stages), w.NumFunctions(), w.MaxParallelism())
	fmt.Printf("  %-8s  %-6s  %-6s  %-10s  %-10s  %s\n",
		"SLO", "wraps", "CPUs", "predicted", "measured", "meets")
	for _, slo := range slos {
		res, err := chiron.PlanPGP(w, set, chiron.PGPOptions{Const: c, SLO: slo})
		if err != nil {
			log.Fatal(err)
		}
		env := chiron.Chiron(c).Env()
		env.Seed = 1
		lats, err := chiron.ExecuteMany(w, res.Plan, env, 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v  %-6d  %-6d  %-10v  %-10v  %v\n",
			slo,
			res.Plan.NumWraps(),
			res.Plan.TotalCPUs(),
			res.Predicted.Round(100*time.Microsecond),
			chiron.Mean(lats).Round(100*time.Microsecond),
			res.MeetsSLO)
	}
}
