// Capacity planning: given a target workload and the Table 2 worker node,
// how many requests/second does each deployment model sustain per node and
// what does a month of traffic cost? (The operator's view of Figures 16
// and 19.)
//
//	go run ./examples/capacity [-workload FINRA-50] [-rps 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"chiron"
	"chiron/internal/cost"
	"chiron/internal/engine"
	"chiron/internal/metrics"
	"chiron/internal/model"
	"chiron/internal/node"
	"chiron/internal/platform"
	"chiron/internal/profiler"
	"chiron/internal/workloads"
)

func main() {
	workload := flag.String("workload", "FINRA-50", "built-in workload")
	targetRPS := flag.Float64("rps", 500, "sustained request rate to provision for")
	flag.Parse()

	var w *chiron.Workflow
	for _, e := range workloads.Suite() {
		if e.Name == *workload {
			w = e.Workflow
		}
	}
	if w == nil {
		log.Fatalf("unknown workload %q", *workload)
	}
	c := model.Default()
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// SLO per the paper's convention.
	fl := platform.Faastlane(c)
	flPlan, err := fl.Plan(w, set, 0)
	if err != nil {
		log.Fatal(err)
	}
	flEnv := fl.Env()
	flEnv.Seed = 1
	flLats, err := engine.RunMany(w, flPlan, flEnv, 10)
	if err != nil {
		log.Fatal(err)
	}
	slo := metrics.Mean(flLats) + 10*time.Millisecond

	worker := node.FromConstants(c)
	fmt.Printf("capacity plan for %s at %.0f req/s (SLO %v, node: %d cores / %.0f GB)\n\n",
		*workload, *targetRPS, slo.Round(time.Millisecond), worker.Cores, worker.MemMB/1024)
	fmt.Printf("%-12s  %-9s  %-7s  %-9s  %-11s  %-7s  %-12s\n",
		"system", "mean-lat", "inst/nd", "rps/node", "nodes@rate", "$/1Mreq", "$/month@rate")

	for _, sys := range platform.ResourceComparison(c) {
		plan, err := sys.Plan(w, set, slo)
		if err != nil {
			log.Fatal(err)
		}
		env := sys.Env()
		env.Seed = 1
		lats, err := engine.RunMany(w, plan, env, 10)
		if err != nil {
			log.Fatal(err)
		}
		mean := metrics.Mean(lats)

		ledgers, err := plan.Ledgers(w)
		if err != nil {
			log.Fatal(err)
		}
		demand := node.DemandOf(c, ledgers)
		instances := worker.MaxInstances(demand)
		if instances < 1 {
			instances = 1
		}
		rps := metrics.Throughput(instances, mean)
		nodes := int(math.Ceil(*targetRPS / rps))

		res, err := engine.Run(w, plan, env)
		if err != nil {
			log.Fatal(err)
		}
		bill, err := cost.Request(c, w, plan, res, sys.BillsPerTransition)
		if err != nil {
			log.Fatal(err)
		}
		perMillion := bill.PerMillion()
		monthly := perMillion / 1e6 * (*targetRPS) * 86400 * 30

		fmt.Printf("%-12s  %-9v  %-7d  %-9.0f  %-11d  $%-11.2f  $%-12.0f\n",
			sys.Name, mean.Round(time.Millisecond), instances, rps, nodes, perMillion, monthly)
	}

	fmt.Println("\nbinding resource note: one-to-one deployments exhaust node memory on")
	fmt.Println("duplicated runtimes long before CPUs; m-to-n wraps flip the bottleneck")
	fmt.Println("and buy the 1.3x-39x throughput of Figure 16.")
}
