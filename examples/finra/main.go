// FINRA trade validation end-to-end: the paper's flagship workload at
// 50-way parallelism, with the data plane exercised for real over the
// repository's TCP object store (the MinIO stand-in) and the timing plane
// executed on the deterministic virtual-time engine.
//
//	go run ./examples/finra
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"chiron"
	"chiron/internal/storage"
)

const parallelism = 50

// trade is one record of the batch the fetch stage produces.
type trade struct {
	ID     uint64
	Symbol [4]byte
	Qty    uint32
	Price  uint64 // cents
}

func main() {
	// ---- data plane: a real TCP KV store moves the trade batch ----
	store, err := storage.ServeTCP("127.0.0.1:0", storage.NewMem())
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	client, err := storage.DialTCP(store.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	batch := makeBatch(1000)
	if err := client.Put("finra/batch-0001", batch); err != nil {
		log.Fatal(err)
	}
	fetched, err := client.Get("finra/batch-0001")
	if err != nil {
		log.Fatal(err)
	}
	violations := validate(fetched)
	fmt.Printf("data plane: stored and re-fetched %d trades (%d bytes) over TCP at %s; %d rule violations found\n",
		len(fetched)/24, len(fetched), store.Addr(), violations)

	// ---- timing plane: deploy FINRA-50 across platforms ----
	w := chiron.FINRA(parallelism)
	c := chiron.DefaultConstants()

	fl, err := chiron.DeployOn(chiron.Faastlane(c), w, 0)
	if err != nil {
		log.Fatal(err)
	}
	flLats, err := fl.InvokeMany(1, 30)
	if err != nil {
		log.Fatal(err)
	}
	slo := chiron.Mean(flLats) + 10*time.Millisecond
	fmt.Printf("\nFaastlane (many-to-one): mean %v over 30 requests -> SLO %v\n",
		chiron.Mean(flLats).Round(time.Millisecond), slo.Round(time.Millisecond))

	dep, err := chiron.Deploy(w, slo)
	if err != nil {
		log.Fatal(err)
	}
	lats, err := dep.InvokeMany(1, 30)
	if err != nil {
		log.Fatal(err)
	}
	cpus, mem, sandboxes, perNode, err := dep.Resources()
	if err != nil {
		log.Fatal(err)
	}
	fcpus, fmem, _, fPerNode, err := fl.Resources()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nChiron (m-to-n):\n")
	fmt.Printf("  latency   mean %v  p99 %v  violations %.1f%%\n",
		chiron.Mean(lats).Round(time.Millisecond),
		chiron.Percentile(lats, 0.99).Round(time.Millisecond),
		chiron.ViolationRate(lats, slo)*100)
	fmt.Printf("  resources %d CPUs / %.0f MB in %d wrap(s)  (Faastlane: %d CPUs / %.0f MB)\n",
		cpus, mem, sandboxes, fcpus, fmem)
	fmt.Printf("  capacity  %d instances per 40-core node vs Faastlane's %d -> %.1fx throughput headroom\n",
		perNode, fPerNode, float64(perNode)/float64(maxInt(fPerNode, 1)))

	// Where did each validator land?
	procs := map[int]int{}
	for name, loc := range dep.Plan.Loc {
		if name == "fetch-portfolio" {
			continue
		}
		procs[loc.Proc]++
	}
	fmt.Printf("  plan      %d validators share %d process(es); fetch rides the orchestrator main thread\n",
		parallelism, len(procs))
}

// makeBatch serializes n deterministic trades.
func makeBatch(n int) []byte {
	out := make([]byte, 0, n*24)
	var buf [24]byte
	for i := 0; i < n; i++ {
		t := trade{
			ID:     uint64(i + 1),
			Symbol: [4]byte{'T', 'J', 'U', byte('A' + i%26)},
			Qty:    uint32(1 + (i*7)%500),
			Price:  uint64(1000 + (i*i)%90000),
		}
		binary.BigEndian.PutUint64(buf[0:8], t.ID)
		copy(buf[8:12], t.Symbol[:])
		binary.BigEndian.PutUint32(buf[12:16], t.Qty)
		binary.BigEndian.PutUint64(buf[16:24], t.Price)
		out = append(out, buf[:]...)
	}
	return out
}

// validate applies a FINRA-style rule to every trade: flag suspiciously
// large notionals (the real computation the simulated validators stand
// for).
func validate(batch []byte) int {
	violations := 0
	for off := 0; off+24 <= len(batch); off += 24 {
		qty := binary.BigEndian.Uint32(batch[off+12 : off+16])
		price := binary.BigEndian.Uint64(batch[off+16 : off+24])
		notional := uint64(qty) * price
		digest := sha256.Sum256(batch[off : off+24]) // audit-trail hash
		if notional > 20_000_000 || digest[0] == 0 {
			violations++
		}
	}
	return violations
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
