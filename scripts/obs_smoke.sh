#!/bin/sh
# obs_smoke: black-box the serving plane's observability the way an
# on-call engineer would use it. Boot chirond, plan the SocialNetwork
# workload with a deliberately impossible 1ms SLO so every request
# violates it, drive 200 invocations, then assert the whole pipeline
# fired: /metrics strict-parses (promcheck) with a tripped burn alert,
# /debug/flight holds at least one slo-tagged trace, and that trace is
# fetchable as Chrome trace_event JSON. Expects bin/chirond (make
# chirond) and the go toolchain (for cmd/promcheck).
set -eu

LOG="${TMPDIR:-/tmp}/chirond-obs-smoke.log"
REQUESTS="${OBS_SMOKE_REQUESTS:-200}"

./bin/chirond -addr 127.0.0.1:0 -scale 0.01 \
	-preload SocialNetwork -plan -slo 1ms >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

ADDR=
i=0
while [ $i -lt 100 ]; do
	ADDR=$(sed -n 's#^chirond listening on http://##p' "$LOG")
	[ -n "$ADDR" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$ADDR" ]; then
	echo "obs-smoke: chirond never came up" >&2
	cat "$LOG" >&2
	exit 1
fi

# Readiness, not sleep.
i=0
while [ $i -lt 100 ]; do
	curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1 && break
	i=$((i + 1))
	sleep 0.1
done
curl -fsS "http://$ADDR/readyz" >/dev/null

# The boot line advertises build provenance (same fields as
# chiron_build_info and run-manifest.json).
grep -q '^chirond build: version=' "$LOG"

# Serial closed loop: the admission fast path admits when a slot is
# free, so every request runs — and every one blows the 1ms SLO.
i=0
while [ $i -lt "$REQUESTS" ]; do
	code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
		"http://$ADDR/workflows/SocialNetwork/invoke")
	case "$code" in
	2*) ;;
	*)
		echo "obs-smoke: invoke $i returned HTTP $code" >&2
		exit 1
		;;
	esac
	i=$((i + 1))
done

# /metrics must strict-parse, the multi-window burn monitor must have
# tripped (every request was bad), traces must have been retained, and
# the runtime bridge and build-info gauges must be live.
go run ./cmd/promcheck -url "http://$ADDR/metrics" \
	-require chiron_slo_burn_alerts_total,chiron_slo_bad_total,chiron_flight_retained_total,chiron_build_info,chiron_runtime_goroutines \
	-min 1

FLIGHT=$(curl -fsS "http://$ADDR/debug/flight")
echo "$FLIGHT" | grep -q '"slo"' || {
	echo "obs-smoke: no slo-tagged trace in /debug/flight:" >&2
	echo "$FLIGHT" >&2
	exit 1
}
ID=$(echo "$FLIGHT" | grep -o '"id":[0-9]*' | head -1 | cut -d: -f2)
if [ -z "$ID" ]; then
	echo "obs-smoke: no retained trace id" >&2
	exit 1
fi
curl -fsS "http://$ADDR/debug/flight/trace?id=$ID" | grep -q '"traceEvents"' || {
	echo "obs-smoke: trace $ID is not Chrome trace_event JSON" >&2
	exit 1
}

kill -TERM "$PID"
wait "$PID"
grep -q 'drained cleanly' "$LOG"
echo "obs-smoke: OK — $REQUESTS invokes, burn alert tripped, trace $ID fetchable"
