#!/bin/sh
# udp_soak: boot chirond with the binary UDP ingress on ephemeral ports,
# drive it closed-loop with bin/soak, then assert from /metrics that the
# plane behaved: zero packets filtered (a correct client never emits a
# malformed datagram), completions flowed, and SIGTERM drains cleanly.
# Expects bin/chirond and bin/soak to exist (make chirond soak).
set -eu

LOG="${TMPDIR:-/tmp}/chirond-udp-soak.log"
DURATION="${SOAK_DURATION:-4s}"
CONC="${SOAK_CONC:-8}"

./bin/chirond -addr 127.0.0.1:0 -udp 127.0.0.1:0 \
	-preload SocialNetwork -plan -scale 0.02 -slo 500ms >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

HTTP_ADDR= UDP_ADDR=
i=0
while [ $i -lt 100 ]; do
	HTTP_ADDR=$(sed -n 's#^chirond listening on http://##p' "$LOG")
	UDP_ADDR=$(sed -n 's#^chirond udp listening on ##p' "$LOG")
	[ -n "$HTTP_ADDR" ] && [ -n "$UDP_ADDR" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$HTTP_ADDR" ] || [ -z "$UDP_ADDR" ]; then
	echo "udp-soak: chirond never came up" >&2
	cat "$LOG" >&2
	exit 1
fi
echo "udp-soak: driving $UDP_ADDR for $DURATION (conc $CONC)"

# soak exits non-zero on any dropped completion (reply loss) or if
# nothing succeeded at all.
./bin/soak -addr "$UDP_ADDR" -workflow SocialNetwork \
	-duration "$DURATION" -conc "$CONC"

METRICS="${TMPDIR:-/tmp}/chirond-udp-soak-metrics.txt"
curl -fsS "http://$HTTP_ADDR/metrics" >"$METRICS"
awk '$1=="chiron_udp_packets_total"{p=$2}
     $1=="chiron_udp_filtered_total"{f=$2}
     $1=="chiron_udp_completed_total"{c=$2}
     END{ printf "udp-soak: packets=%d filtered=%d completed=%d\n", p, f, c;
          if (p+0 == 0)  { print "no packets received";       exit 1 }
          if (f+0 != 0)  { print "packets were filtered";     exit 1 }
          if (c+0 == 0)  { print "no completions recorded";   exit 1 } }' "$METRICS"

kill -TERM "$PID"
wait "$PID"
grep -q 'drained cleanly' "$LOG"
echo "udp-soak: ok"
