package chiron_test

import (
	"testing"
	"time"

	"chiron"
)

func TestDeployInvokeRoundTrip(t *testing.T) {
	w := chiron.FINRA(10)
	dep, err := chiron.Deploy(w, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.Invoke(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.E2E <= 0 || res.E2E > 300*time.Millisecond {
		t.Fatalf("E2E = %v, want within the 300ms SLO", res.E2E)
	}
	if len(res.Functions) != 11 {
		t.Fatalf("%d function timings", len(res.Functions))
	}
	cpus, mem, sandboxes, instances, err := dep.Resources()
	if err != nil {
		t.Fatal(err)
	}
	if cpus < 1 || mem <= 0 || sandboxes < 1 || instances < 1 {
		t.Fatalf("resources = %d cpus / %.1fMB / %d sandboxes / %d instances", cpus, mem, sandboxes, instances)
	}
	pred, err := dep.PredictLatency()
	if err != nil {
		t.Fatal(err)
	}
	gap := float64(pred-res.E2E) / float64(res.E2E)
	if gap < -0.35 || gap > 0.35 {
		t.Fatalf("predictor (%v) far from engine (%v)", pred, res.E2E)
	}
}

func TestDeployOnBaseline(t *testing.T) {
	c := chiron.DefaultConstants()
	w := chiron.SocialNetwork()
	chironDep, err := chiron.Deploy(w, 120*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := chiron.DeployOn(chiron.OpenFaaS(c), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	chLats, err := chironDep.InvokeMany(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	bLats, err := baseline.InvokeMany(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if chiron.Mean(chLats) >= chiron.Mean(bLats) {
		t.Fatalf("Chiron (%v) should beat OpenFaaS (%v) on an interactive workflow",
			chiron.Mean(chLats), chiron.Mean(bLats))
	}
}

func TestNewWorkflowAndCustomDeploy(t *testing.T) {
	head := &chiron.Function{
		Name: "resize", Runtime: chiron.Python,
		Segments: []chiron.Segment{
			{Kind: chiron.CPU, Dur: 3 * time.Millisecond},
			{Kind: chiron.DiskIO, Dur: 2 * time.Millisecond, Bytes: 1 << 20},
		},
		MemMB: 4, OutputBytes: 1 << 20,
	}
	var thumbs []*chiron.Function
	for _, n := range []string{"t-small", "t-medium", "t-large"} {
		thumbs = append(thumbs, &chiron.Function{
			Name: n, Runtime: chiron.Python,
			Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: 5 * time.Millisecond}},
			MemMB:    2,
		})
	}
	w, err := chiron.NewWorkflow("thumbnailer", 0, []*chiron.Function{head}, thumbs)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := chiron.Deploy(w, 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lats, err := dep.InvokeMany(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if v := chiron.ViolationRate(lats, 40*time.Millisecond); v > 0.1 {
		t.Fatalf("SLO violations %.0f%% on a planned deployment", v*100)
	}
	if p95 := chiron.Percentile(lats, 0.95); p95 > 40*time.Millisecond {
		t.Fatalf("p95 %v exceeds the SLO", p95)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := chiron.Experiments()
	if len(ids) != 16 {
		t.Fatalf("%d experiments, want 16", len(ids))
	}
	cfg := chiron.DefaultExperimentConfig()
	cfg.Quick = true
	tab, err := chiron.RunExperiment("fig4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig4" || len(tab.Rows) == 0 {
		t.Fatalf("table = %+v", tab)
	}
}

func TestPlanPGPDirectly(t *testing.T) {
	w := chiron.SLApp()
	set, err := chiron.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chiron.PlanPGP(w, set, chiron.PGPOptions{
		Const: chiron.DefaultConstants(),
		SLO:   80 * time.Millisecond,
		Style: chiron.PoolStyle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Sandboxes[0].Pool {
		t.Fatal("pool style ignored")
	}
	env := chiron.Chiron(chiron.DefaultConstants()).Env()
	env.Seed = 5
	r, err := chiron.Execute(w, res.Plan, env)
	if err != nil {
		t.Fatal(err)
	}
	if r.E2E <= 0 {
		t.Fatal("no latency")
	}
}

func TestRunLiveFacade(t *testing.T) {
	w, err := chiron.NewWorkflow("live-wf", 0, []*chiron.Function{{
		Name: "only", Runtime: chiron.Python,
		Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: 5 * time.Millisecond}},
		MemMB:    1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := chiron.Deploy(w, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chiron.RunLive(w, dep.Plan, chiron.LiveOptions{
		Bindings: map[string]chiron.LiveFn{
			"only": func(c *chiron.LiveCtx) error {
				c.Store.Put("ran", []byte("yes"))
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := res.Store.Get("ran"); err != nil || string(v) != "yes" {
		t.Fatalf("bound function did not run: %v %q", err, v)
	}
}

func TestPlanDynamicFacade(t *testing.T) {
	fn := func(name string) *chiron.Function {
		return &chiron.Function{
			Name: name, Runtime: chiron.Python,
			Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: 2 * time.Millisecond}},
			MemMB:    1,
		}
	}
	w := &chiron.DynamicWorkflow{
		Name: "dyn",
		Head: []chiron.Stage{{Functions: []*chiron.Function{fn("head")}}},
		Branches: []chiron.DynamicBranch{
			{Name: "a", Weight: 0.5, Stages: []chiron.Stage{{Functions: []*chiron.Function{fn("fa")}}}},
			{Name: "b", Weight: 0.5, Stages: []chiron.Stage{{Functions: []*chiron.Function{fn("fb")}}}},
		},
	}
	d, err := chiron.PlanDynamic(w, 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Plans) != 2 || d.ExpectedLatency() <= 0 {
		t.Fatalf("dynamic deployment = %d plans, expected %v", len(d.Plans), d.ExpectedLatency())
	}
}

func TestAdaptiveControllerFacade(t *testing.T) {
	src := func() *chiron.Workflow {
		w, _ := chiron.NewWorkflow("ad", 0, []*chiron.Function{{
			Name: "f", Runtime: chiron.Python,
			Segments: []chiron.Segment{{Kind: chiron.CPU, Dur: 2 * time.Millisecond}},
			MemMB:    1,
		}})
		return w
	}
	c, err := chiron.NewAdaptiveController(src, chiron.AdaptiveOptions{SLO: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if c.Plan() == nil || c.Predicted() <= 0 {
		t.Fatal("controller did not plan")
	}
}
